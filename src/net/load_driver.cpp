#include "net/load_driver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>

#include "net/http_client.hpp"
#include "util/contracts.hpp"

namespace wiloc::net {

namespace {

double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t i = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
  return sorted[i];
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// The per-connection batch plan: pre-encoded bodies + scan counts.
struct ConnPlan {
  std::vector<std::string> bodies;
  std::vector<std::size_t> scans;
};

struct ConnResult {
  std::size_t scans_posted = 0;
  std::size_t batches = 0;
  std::size_t arrival_queries = 0;
  std::size_t arrival_misses = 0;
  std::size_t errors = 0;
  std::vector<double> post_us;
  std::vector<double> arrival_us;
};

}  // namespace

double LoadReport::post_quantile_us(double q) const {
  return sorted_quantile(post_latency_us, q);
}

double LoadReport::arrival_quantile_us(double q) const {
  return sorted_quantile(arrival_latency_us, q);
}

std::string encode_scan_batch(std::span<const core::ScanSubmission> batch) {
  std::ostringstream out;
  out << "{\"scans\":[";
  bool first_scan = true;
  for (const core::ScanSubmission& sub : batch) {
    if (!first_scan) out << ',';
    first_scan = false;
    out << "{\"trip\":" << sub.trip.value() << ",\"t\":" << fmt(sub.scan.time)
        << ",\"readings\":[";
    bool first_reading = true;
    for (const rf::ApReading& r : sub.scan.readings) {
      if (!first_reading) out << ',';
      first_reading = false;
      out << '[' << r.ap.value() << ',' << fmt(r.rssi_dbm) << ']';
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

HttpLoadDriver::HttpLoadDriver(LoadDriverOptions options)
    : options_(std::move(options)) {
  WILOC_EXPECTS(options_.connections >= 1);
  WILOC_EXPECTS(options_.batch_size >= 1);
}

LoadReport HttpLoadDriver::run(std::span<const core::ScanSubmission> stream,
                               std::vector<ArrivalProbe> probes) {
  // Shard by trip so one connection owns a trip's whole scan sequence
  // (per-trip order is an ingest invariant; cross-trip order is not).
  std::vector<ConnPlan> plans(options_.connections);
  {
    std::vector<std::vector<const core::ScanSubmission*>> pending(
        options_.connections);
    for (const core::ScanSubmission& sub : stream) {
      const std::size_t conn = sub.trip.value() % options_.connections;
      pending[conn].push_back(&sub);
      if (pending[conn].size() >= options_.batch_size) {
        std::vector<core::ScanSubmission> batch;
        batch.reserve(pending[conn].size());
        for (const auto* p : pending[conn]) batch.push_back(*p);
        plans[conn].bodies.push_back(encode_scan_batch(batch));
        plans[conn].scans.push_back(batch.size());
        pending[conn].clear();
      }
    }
    for (std::size_t conn = 0; conn < options_.connections; ++conn) {
      if (pending[conn].empty()) continue;
      std::vector<core::ScanSubmission> batch;
      for (const auto* p : pending[conn]) batch.push_back(*p);
      plans[conn].bodies.push_back(encode_scan_batch(batch));
      plans[conn].scans.push_back(batch.size());
    }
  }

  std::vector<ConnResult> results(options_.connections);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(options_.connections);
  for (std::size_t conn = 0; conn < options_.connections; ++conn) {
    workers.emplace_back([this, conn, &plans, &results, &probes] {
      const ConnPlan& plan = plans[conn];
      ConnResult& r = results[conn];
      try {
        HttpClient client(options_.host, options_.port);
        std::size_t probe_i = conn;  // stagger probe rotation per conn
        for (std::size_t b = 0; b < plan.bodies.size(); ++b) {
          const auto t0 = std::chrono::steady_clock::now();
          const ClientResponse resp =
              client.post("/v1/scans", plan.bodies[b]);
          const double us =
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
          r.post_us.push_back(us);
          ++r.batches;
          if (resp.status == 200) {
            r.scans_posted += plan.scans[b];
          } else {
            ++r.errors;
          }
          if (options_.arrival_every > 0 && !probes.empty() &&
              (b + 1) % options_.arrival_every == 0) {
            const ArrivalProbe& probe = probes[probe_i++ % probes.size()];
            std::ostringstream target;
            target << "/v1/arrival?trip=" << probe.trip.value()
                   << "&stop=" << probe.stop << "&now=" << fmt(probe.now);
            const auto q0 = std::chrono::steady_clock::now();
            const ClientResponse arrival = client.get(target.str());
            r.arrival_us.push_back(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - q0)
                    .count());
            ++r.arrival_queries;
            if (arrival.status == 404)
              ++r.arrival_misses;
            else if (arrival.status != 200)
              ++r.errors;
          }
        }
      } catch (const std::exception&) {
        ++r.errors;  // transport failure kills this connection's run
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  LoadReport report;
  report.wall_s = wall_s;
  for (const ConnResult& r : results) {
    report.scans_posted += r.scans_posted;
    report.batches += r.batches;
    report.arrival_queries += r.arrival_queries;
    report.arrival_misses += r.arrival_misses;
    report.errors += r.errors;
    report.post_latency_us.insert(report.post_latency_us.end(),
                                  r.post_us.begin(), r.post_us.end());
    report.arrival_latency_us.insert(report.arrival_latency_us.end(),
                                     r.arrival_us.begin(), r.arrival_us.end());
  }
  std::sort(report.post_latency_us.begin(), report.post_latency_us.end());
  std::sort(report.arrival_latency_us.begin(),
            report.arrival_latency_us.end());
  report.scans_per_sec =
      wall_s > 0.0 ? static_cast<double>(report.scans_posted) / wall_s : 0.0;
  return report;
}

}  // namespace wiloc::net
