#include "net/load_driver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>

#include "net/http_client.hpp"
#include "net/json.hpp"
#include "util/contracts.hpp"

namespace wiloc::net {

namespace {

double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t i = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
  return sorted[i];
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// The per-connection batch plan: pre-encoded bodies + scan counts.
struct ConnPlan {
  std::vector<std::string> bodies;
  std::vector<std::size_t> scans;
};

struct ConnResult {
  std::size_t scans_posted = 0;
  std::size_t batches = 0;
  std::size_t arrival_queries = 0;
  std::size_t arrival_misses = 0;
  std::size_t errors = 0;
  std::size_t shed_503 = 0;
  std::size_t rate_limited_429 = 0;
  std::size_t deadline_504 = 0;
  std::size_t timeouts_408 = 0;
  std::size_t transport_errors = 0;
  std::size_t degraded_reads = 0;
  std::size_t cache_hits = 0;
  std::size_t retries = 0;
  std::size_t good_responses = 0;
  std::vector<double> post_us;
  std::vector<double> arrival_us;
  std::vector<double> hit_us;
  std::vector<double> miss_us;
  std::vector<double> shed_us;

  /// Buckets a non-2xx answer into the fault-class ledger.
  void classify(int status, double us) {
    switch (status) {
      case 503:
        ++shed_503;
        shed_us.push_back(us);
        break;
      case 429:
        ++rate_limited_429;
        break;
      case 504:
        ++deadline_504;
        break;
      case 408:
        ++timeouts_408;
        break;
      default:
        break;
    }
  }
};

}  // namespace

double LoadReport::post_quantile_us(double q) const {
  return sorted_quantile(post_latency_us, q);
}

double LoadReport::arrival_quantile_us(double q) const {
  return sorted_quantile(arrival_latency_us, q);
}

double LoadReport::arrival_hit_quantile_us(double q) const {
  return sorted_quantile(arrival_hit_latency_us, q);
}

double LoadReport::arrival_miss_quantile_us(double q) const {
  return sorted_quantile(arrival_miss_latency_us, q);
}

double LoadReport::shed_quantile_us(double q) const {
  return sorted_quantile(shed_latency_us, q);
}

std::string encode_scan_batch(std::span<const core::ScanSubmission> batch) {
  std::ostringstream out;
  out << "{\"scans\":[";
  bool first_scan = true;
  for (const core::ScanSubmission& sub : batch) {
    if (!first_scan) out << ',';
    first_scan = false;
    out << "{\"trip\":" << sub.trip.value() << ",\"t\":" << fmt(sub.scan.time)
        << ",\"readings\":[";
    bool first_reading = true;
    for (const rf::ApReading& r : sub.scan.readings) {
      if (!first_reading) out << ',';
      first_reading = false;
      out << '[' << r.ap.value() << ',' << fmt(r.rssi_dbm) << ']';
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

std::optional<std::vector<core::ScanSubmission>> decode_scan_batch(
    const std::string& body, std::string* error) {
  const auto fail = [error](std::string message)
      -> std::optional<std::vector<core::ScanSubmission>> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  std::string parse_error;
  const auto doc = parse_json(body, &parse_error);
  if (!doc.has_value()) return fail("bad JSON: " + parse_error);
  const JsonValue* scans = doc->get("scans");
  const std::vector<JsonValue>* items =
      scans != nullptr ? scans->as_array() : nullptr;
  if (items == nullptr) return fail("missing \"scans\" array");

  std::vector<core::ScanSubmission> batch;
  batch.reserve(items->size());
  for (const JsonValue& item : *items) {
    const auto trip = item.get_number("trip");
    const auto t = item.get_number("t");
    const JsonValue* readings = item.get("readings");
    const std::vector<JsonValue>* pairs =
        readings != nullptr ? readings->as_array() : nullptr;
    if (!trip.has_value() || !t.has_value() || pairs == nullptr)
      return fail("scan needs trip, t and readings");
    rf::WifiScan scan;
    scan.time = *t;
    scan.readings.reserve(pairs->size());
    for (const JsonValue& pair : *pairs) {
      const std::vector<JsonValue>* rd = pair.as_array();
      if (rd == nullptr || rd->size() != 2)
        return fail("reading must be [ap, rssi_dbm]");
      const auto ap = (*rd)[0].as_number();
      const auto rssi = (*rd)[1].as_number();
      if (!ap.has_value() || !rssi.has_value())
        return fail("reading must be [ap, rssi_dbm]");
      scan.readings.push_back(
          {rf::ApId(static_cast<std::uint32_t>(*ap)), *rssi});
    }
    // Normalize to the WifiScan invariant (strongest first, AP id
    // tie-break) — clients need not pre-sort.
    std::sort(scan.readings.begin(), scan.readings.end(),
              [](const rf::ApReading& a, const rf::ApReading& b) {
                if (a.rssi_dbm != b.rssi_dbm) return a.rssi_dbm > b.rssi_dbm;
                return a.ap < b.ap;
              });
    batch.push_back({roadnet::TripId(static_cast<std::uint32_t>(*trip)),
                     std::move(scan)});
  }
  return batch;
}

HttpLoadDriver::HttpLoadDriver(LoadDriverOptions options)
    : options_(std::move(options)) {
  WILOC_EXPECTS(options_.connections >= 1);
  WILOC_EXPECTS(options_.batch_size >= 1);
}

LoadReport HttpLoadDriver::run(std::span<const core::ScanSubmission> stream,
                               std::vector<ArrivalProbe> probes) {
  // Shard by trip so one connection owns a trip's whole scan sequence
  // (per-trip order is an ingest invariant; cross-trip order is not).
  std::vector<ConnPlan> plans(options_.connections);
  {
    std::vector<std::vector<const core::ScanSubmission*>> pending(
        options_.connections);
    for (const core::ScanSubmission& sub : stream) {
      const std::size_t conn = sub.trip.value() % options_.connections;
      pending[conn].push_back(&sub);
      if (pending[conn].size() >= options_.batch_size) {
        std::vector<core::ScanSubmission> batch;
        batch.reserve(pending[conn].size());
        for (const auto* p : pending[conn]) batch.push_back(*p);
        plans[conn].bodies.push_back(encode_scan_batch(batch));
        plans[conn].scans.push_back(batch.size());
        pending[conn].clear();
      }
    }
    for (std::size_t conn = 0; conn < options_.connections; ++conn) {
      if (pending[conn].empty()) continue;
      std::vector<core::ScanSubmission> batch;
      for (const auto* p : pending[conn]) batch.push_back(*p);
      plans[conn].bodies.push_back(encode_scan_batch(batch));
      plans[conn].scans.push_back(batch.size());
    }
  }

  std::vector<ConnResult> results(options_.connections);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(options_.connections);
  for (std::size_t conn = 0; conn < options_.connections; ++conn) {
    workers.emplace_back([this, conn, &plans, &results, &probes] {
      const ConnPlan& plan = plans[conn];
      ConnResult& r = results[conn];
      HttpClientOptions copts = options_.client;
      copts.jitter_seed += conn;  // decorrelate per-connection backoff
      HttpClient client(options_.host, options_.port, copts);
      std::size_t probe_i = conn;  // stagger probe rotation per conn
      for (std::size_t b = 0; b < plan.bodies.size(); ++b) {
        const auto t0 = std::chrono::steady_clock::now();
        ++r.batches;
        // A faulted request costs that request, not the rest of the
        // connection's run — the client reconnects on the next one.
        try {
          const ClientResponse resp = client.post(
              "/v1/scans", plan.bodies[b], "application/json",
              options_.idempotent_posts);
          const double us = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
          r.post_us.push_back(us);
          if (resp.status == 200) {
            r.scans_posted += plan.scans[b];
            ++r.good_responses;
          } else {
            ++r.errors;
            r.classify(resp.status, us);
          }
        } catch (const std::exception&) {
          ++r.errors;
          ++r.transport_errors;
        }
        const auto probe_once = [&] {
          const ArrivalProbe& probe = probes[probe_i++ % probes.size()];
          std::ostringstream target;
          target << "/v1/arrival?trip=" << probe.trip.value()
                 << "&stop=" << probe.stop;
          if (probe.with_now) target << "&now=" << fmt(probe.now);
          const auto q0 = std::chrono::steady_clock::now();
          ++r.arrival_queries;
          try {
            const ClientResponse arrival = client.get(target.str());
            const double us = std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - q0)
                                  .count();
            r.arrival_us.push_back(us);
            if (arrival.headers.count("X-Degraded") != 0) ++r.degraded_reads;
            const bool hit = arrival.headers.count("X-Cache") != 0;
            if (hit) {
              ++r.cache_hits;
              r.hit_us.push_back(us);
            } else {
              r.miss_us.push_back(us);
            }
            if (arrival.status == 404) {
              ++r.arrival_misses;
              ++r.good_responses;
            } else if (arrival.status == 200) {
              ++r.good_responses;
            } else {
              ++r.errors;
              r.classify(arrival.status, us);
            }
          } catch (const std::exception&) {
            ++r.errors;
            ++r.transport_errors;
          }
        };
        if (!probes.empty())
          for (std::size_t p = 0; p < options_.reads_per_post; ++p)
            probe_once();
        if (options_.arrival_every > 0 && !probes.empty() &&
            (b + 1) % options_.arrival_every == 0)
          probe_once();
      }
      r.retries = client.retries();
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  LoadReport report;
  report.wall_s = wall_s;
  for (const ConnResult& r : results) {
    report.scans_posted += r.scans_posted;
    report.batches += r.batches;
    report.arrival_queries += r.arrival_queries;
    report.arrival_misses += r.arrival_misses;
    report.errors += r.errors;
    report.shed_503 += r.shed_503;
    report.rate_limited_429 += r.rate_limited_429;
    report.deadline_504 += r.deadline_504;
    report.timeouts_408 += r.timeouts_408;
    report.transport_errors += r.transport_errors;
    report.degraded_reads += r.degraded_reads;
    report.arrival_cache_hits += r.cache_hits;
    report.retries += r.retries;
    report.good_responses += r.good_responses;
    report.post_latency_us.insert(report.post_latency_us.end(),
                                  r.post_us.begin(), r.post_us.end());
    report.arrival_latency_us.insert(report.arrival_latency_us.end(),
                                     r.arrival_us.begin(), r.arrival_us.end());
    report.arrival_hit_latency_us.insert(report.arrival_hit_latency_us.end(),
                                         r.hit_us.begin(), r.hit_us.end());
    report.arrival_miss_latency_us.insert(
        report.arrival_miss_latency_us.end(), r.miss_us.begin(),
        r.miss_us.end());
    report.shed_latency_us.insert(report.shed_latency_us.end(),
                                  r.shed_us.begin(), r.shed_us.end());
  }
  std::sort(report.post_latency_us.begin(), report.post_latency_us.end());
  std::sort(report.arrival_latency_us.begin(),
            report.arrival_latency_us.end());
  std::sort(report.arrival_hit_latency_us.begin(),
            report.arrival_hit_latency_us.end());
  std::sort(report.arrival_miss_latency_us.begin(),
            report.arrival_miss_latency_us.end());
  std::sort(report.shed_latency_us.begin(), report.shed_latency_us.end());
  report.scans_per_sec =
      wall_s > 0.0 ? static_cast<double>(report.scans_posted) / wall_s : 0.0;
  report.goodput_rps =
      wall_s > 0.0 ? static_cast<double>(report.good_responses) / wall_s : 0.0;
  report.cache_hit_rate =
      report.arrival_queries > 0
          ? static_cast<double>(report.arrival_cache_hits) /
                static_cast<double>(report.arrival_queries)
          : 0.0;
  return report;
}

}  // namespace wiloc::net
