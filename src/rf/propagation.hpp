// RF signal propagation.
//
// The paper deliberately avoids fitting a propagation model for
// *positioning* — WiLocator only uses RSS ranks. The simulator, however,
// needs a generative model to stand in for the physical world:
//
//   RSS(x, ap) = P0(ap) - 10 n(ap) log10(max(d, d0)/d0)   (log-distance)
//              + S_ap(x)                                  (static shadowing)
//              + F                                        (fast fading)
//
// S_ap is a spatially correlated, time-invariant field (buildings, street
// furniture): it is part of the *expected* signal at a point and therefore
// part of what long-run crowd averaging observes. F is zero-mean per-scan
// noise — the ">10 dB swings at a static point" the paper cites — and is
// what rank averaging defeats.
#pragma once

#include "geo/geometry.hpp"
#include "rf/access_point.hpp"
#include "util/rng.hpp"

namespace wiloc::rf {

/// Interface: expected and sampled RSS of an AP at a point.
class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  /// Expected (long-run average) RSS in dBm at point x. Deterministic.
  virtual double mean_rss(const AccessPoint& ap, geo::Point x) const = 0;

  /// One noisy scan observation in dBm.
  virtual double sample_rss(const AccessPoint& ap, geo::Point x,
                            Rng& rng) const = 0;
};

/// Parameters of the log-distance + shadowing model.
struct LogDistanceParams {
  double reference_distance_m = 1.0;  ///< d0
  double shadowing_sigma_db = 4.0;    ///< amplitude of the static field
  double shadowing_cell_m = 25.0;     ///< spatial decorrelation length
  double fading_sigma_db = 3.0;       ///< per-scan fast fading
  std::uint64_t shadowing_seed = 17;  ///< seeds the static field
};

/// Log-distance path loss with a deterministic, spatially correlated
/// shadowing field (value noise, bilinear interpolation) and Gaussian
/// fast fading.
class LogDistanceModel final : public PropagationModel {
 public:
  explicit LogDistanceModel(LogDistanceParams params = {});

  double mean_rss(const AccessPoint& ap, geo::Point x) const override;
  double sample_rss(const AccessPoint& ap, geo::Point x,
                    Rng& rng) const override;

  /// The path-loss term alone (no shadowing), exposed for tests and for
  /// the EZ-style trilateration baseline which inverts it.
  double path_loss_rss(const AccessPoint& ap, geo::Point x) const;

  /// The static shadowing field value for an AP at a point.
  double shadowing_db(const AccessPoint& ap, geo::Point x) const;

  const LogDistanceParams& params() const { return params_; }

 private:
  LogDistanceParams params_;
};

}  // namespace wiloc::rf
