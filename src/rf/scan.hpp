// WiFi scanning — what a rider's phone reports to the server.
//
// A scan lists the APs heard above the sensitivity floor with quantized
// RSS readings, strongest first. The paper sets the scan period to 10 s;
// the period itself is owned by the crowd-sensing simulator — the Scanner
// here models a single scan.
#pragma once

#include <cstdint>
#include <vector>

#include "rf/propagation.hpp"
#include "rf/registry.hpp"
#include "util/time.hpp"

namespace wiloc::rf {

/// One AP heard in a scan.
struct ApReading {
  ApId ap;
  double rssi_dbm;  ///< quantized to integer dBm, like Android reports
};

/// The result of one WiFi scan: readings sorted by descending RSSI,
/// ties broken by ascending AP id (deterministic).
struct WifiScan {
  SimTime time = 0.0;
  std::vector<ApReading> readings;

  bool empty() const { return readings.empty(); }

  /// AP ids in rank order (strongest first).
  std::vector<ApId> ranked_aps() const;
};

/// Phone scanning characteristics.
struct ScannerParams {
  double sensitivity_dbm = -90.0;  ///< readings below this are not heard
  std::size_t max_aps = 16;        ///< chipsets report a bounded list
  double miss_probability = 0.02;  ///< chance a hearable AP is missed
};

/// Produces WifiScans from the AP registry + propagation model.
class Scanner {
 public:
  explicit Scanner(ScannerParams params = {});

  /// Scans at position x and time t. APs in outage at t are silent.
  WifiScan scan(const ApRegistry& registry, const PropagationModel& model,
                geo::Point x, SimTime t, Rng& rng) const;

  const ScannerParams& params() const { return params_; }

 private:
  ScannerParams params_;
};

/// Averages several scans (e.g. from multiple riders on the same bus)
/// into one: per-AP mean RSS over the scans that heard it, re-ranked.
/// Scans must share the same timestamp semantics; the first scan's time
/// is used. Requires a non-empty input.
WifiScan merge_scans(const std::vector<WifiScan>& scans);

}  // namespace wiloc::rf
