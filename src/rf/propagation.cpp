#include "rf/propagation.hpp"

#include <cmath>
#include <cstdint>

namespace wiloc::rf {

namespace {

// SplitMix64-style avalanche used as a position/AP hash for the value
// noise lattice.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Deterministic standard-normal-ish value (actually uniform mapped to
// [-1, 1]; adequate for a bounded shadowing texture) at a lattice corner.
double lattice_value(std::uint64_t seed, std::uint32_t ap,
                     std::int64_t ix, std::int64_t iy) {
  std::uint64_t h = seed;
  h = mix(h ^ (0x9e3779b97f4a7c15ULL + ap));
  h = mix(h ^ static_cast<std::uint64_t>(ix) * 0xff51afd7ed558ccdULL);
  h = mix(h ^ static_cast<std::uint64_t>(iy) * 0xc4ceb9fe1a85ec53ULL);
  // Map to [-1, 1].
  return static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
}

double smoothstep(double t) { return t * t * (3.0 - 2.0 * t); }

}  // namespace

LogDistanceModel::LogDistanceModel(LogDistanceParams params)
    : params_(params) {
  WILOC_EXPECTS(params_.reference_distance_m > 0.0);
  WILOC_EXPECTS(params_.shadowing_sigma_db >= 0.0);
  WILOC_EXPECTS(params_.shadowing_cell_m > 0.0);
  WILOC_EXPECTS(params_.fading_sigma_db >= 0.0);
}

double LogDistanceModel::path_loss_rss(const AccessPoint& ap,
                                       geo::Point x) const {
  const double d =
      std::max(geo::distance(ap.position, x), params_.reference_distance_m);
  return ap.tx_power_dbm -
         10.0 * ap.path_loss_exponent *
             std::log10(d / params_.reference_distance_m);
}

double LogDistanceModel::shadowing_db(const AccessPoint& ap,
                                      geo::Point x) const {
  if (params_.shadowing_sigma_db == 0.0) return 0.0;
  const double cell = params_.shadowing_cell_m;
  const double gx = x.x / cell;
  const double gy = x.y / cell;
  const auto ix = static_cast<std::int64_t>(std::floor(gx));
  const auto iy = static_cast<std::int64_t>(std::floor(gy));
  const double tx = smoothstep(gx - static_cast<double>(ix));
  const double ty = smoothstep(gy - static_cast<double>(iy));
  const std::uint32_t ap_key = ap.id.value();
  const double v00 = lattice_value(params_.shadowing_seed, ap_key, ix, iy);
  const double v10 =
      lattice_value(params_.shadowing_seed, ap_key, ix + 1, iy);
  const double v01 =
      lattice_value(params_.shadowing_seed, ap_key, ix, iy + 1);
  const double v11 =
      lattice_value(params_.shadowing_seed, ap_key, ix + 1, iy + 1);
  const double v0 = v00 + (v10 - v00) * tx;
  const double v1 = v01 + (v11 - v01) * tx;
  return params_.shadowing_sigma_db * (v0 + (v1 - v0) * ty);
}

double LogDistanceModel::mean_rss(const AccessPoint& ap, geo::Point x) const {
  return path_loss_rss(ap, x) + shadowing_db(ap, x);
}

double LogDistanceModel::sample_rss(const AccessPoint& ap, geo::Point x,
                                    Rng& rng) const {
  return mean_rss(ap, x) + rng.normal(0.0, params_.fading_sigma_db);
}

}  // namespace wiloc::rf
