#include "rf/cellular.hpp"

#include <cmath>

namespace wiloc::rf {

TowerId TowerRegistry::add(geo::Point position, double tx_power_dbm,
                           double path_loss_exponent) {
  WILOC_EXPECTS(path_loss_exponent > 0.0);
  const TowerId id(static_cast<TowerId::underlying>(towers_.size()));
  towers_.push_back({id, position, tx_power_dbm, path_loss_exponent});
  return id;
}

const CellTower& TowerRegistry::tower(TowerId id) const {
  WILOC_EXPECTS(id.index() < towers_.size());
  return towers_[id.index()];
}

double TowerRegistry::mean_rss(const CellTower& tower, geo::Point x) const {
  const double d = std::max(geo::distance(tower.position, x), 1.0);
  return tower.tx_power_dbm - 10.0 * tower.path_loss_exponent * std::log10(d);
}

std::optional<CellObservation> TowerRegistry::observe(geo::Point x, SimTime t,
                                                      Rng& rng,
                                                      double sigma_db) const {
  if (towers_.empty()) return std::nullopt;
  CellObservation obs;
  obs.time = t;
  double best = -1e300;
  for (const CellTower& tower : towers_) {
    const double rss = mean_rss(tower, x) + rng.normal(0.0, sigma_db);
    if (rss > best) {
      best = rss;
      obs.tower = tower.id;
    }
  }
  return obs;
}

}  // namespace wiloc::rf
