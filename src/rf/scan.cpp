#include "rf/scan.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace wiloc::rf {

std::vector<ApId> WifiScan::ranked_aps() const {
  std::vector<ApId> out;
  out.reserve(readings.size());
  for (const ApReading& r : readings) out.push_back(r.ap);
  return out;
}

Scanner::Scanner(ScannerParams params) : params_(params) {
  WILOC_EXPECTS(params_.max_aps >= 1);
  WILOC_EXPECTS(params_.miss_probability >= 0.0 &&
                params_.miss_probability < 1.0);
}

WifiScan Scanner::scan(const ApRegistry& registry,
                       const PropagationModel& model, geo::Point x, SimTime t,
                       Rng& rng) const {
  WifiScan result;
  result.time = t;
  for (const AccessPoint& ap : registry.aps()) {
    if (!registry.is_active(ap.id, t)) continue;
    const double rss = model.sample_rss(ap, x, rng);
    if (rss < params_.sensitivity_dbm) continue;
    if (rng.bernoulli(params_.miss_probability)) continue;
    result.readings.push_back({ap.id, std::round(rss)});
  }
  std::sort(result.readings.begin(), result.readings.end(),
            [](const ApReading& a, const ApReading& b) {
              if (a.rssi_dbm != b.rssi_dbm) return a.rssi_dbm > b.rssi_dbm;
              return a.ap < b.ap;
            });
  if (result.readings.size() > params_.max_aps)
    result.readings.resize(params_.max_aps);
  return result;
}

WifiScan merge_scans(const std::vector<WifiScan>& scans) {
  WILOC_EXPECTS(!scans.empty());
  std::map<ApId, std::pair<double, std::size_t>> acc;  // sum, count
  for (const WifiScan& scan : scans) {
    for (const ApReading& r : scan.readings) {
      auto& slot = acc[r.ap];
      slot.first += r.rssi_dbm;
      slot.second += 1;
    }
  }
  WifiScan merged;
  merged.time = scans.front().time;
  merged.readings.reserve(acc.size());
  for (const auto& [ap, sum_count] : acc) {
    merged.readings.push_back(
        {ap, sum_count.first / static_cast<double>(sum_count.second)});
  }
  std::sort(merged.readings.begin(), merged.readings.end(),
            [](const ApReading& a, const ApReading& b) {
              if (a.rssi_dbm != b.rssi_dbm) return a.rssi_dbm > b.rssi_dbm;
              return a.ap < b.ap;
            });
  return merged;
}

}  // namespace wiloc::rf
