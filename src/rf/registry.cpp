#include "rf/registry.hpp"

#include <cstdio>
#include <limits>

namespace wiloc::rf {

namespace {
std::string synth_bssid(std::size_t index) {
  // Locally administered MAC prefix 02:, remaining bytes from the index.
  char buf[18];
  std::snprintf(buf, sizeof buf, "02:00:%02zx:%02zx:%02zx:%02zx",
                (index >> 24) & 0xff, (index >> 16) & 0xff,
                (index >> 8) & 0xff, index & 0xff);
  return buf;
}
}  // namespace

ApId ApRegistry::add(geo::Point position, double tx_power_dbm,
                     double path_loss_exponent) {
  WILOC_EXPECTS(path_loss_exponent > 0.0);
  const ApId id(static_cast<ApId::underlying>(aps_.size()));
  aps_.push_back({id, synth_bssid(aps_.size()), position, tx_power_dbm,
                  path_loss_exponent});
  outages_.emplace_back();
  return id;
}

const AccessPoint& ApRegistry::ap(ApId id) const {
  WILOC_EXPECTS(id.index() < aps_.size());
  return aps_[id.index()];
}

void ApRegistry::add_outage(ApId id, SimTime from, SimTime to) {
  WILOC_EXPECTS(id.index() < aps_.size());
  WILOC_EXPECTS(from < to);
  outages_[id.index()].push_back({from, to});
}

void ApRegistry::retire(ApId id, SimTime from) {
  add_outage(id, from, std::numeric_limits<double>::infinity());
}

bool ApRegistry::is_active(ApId id, SimTime t) const {
  WILOC_EXPECTS(id.index() < aps_.size());
  for (const Outage& o : outages_[id.index()]) {
    if (t >= o.from && t < o.to) return false;
  }
  return true;
}

std::vector<ApId> ApRegistry::active_at(SimTime t) const {
  std::vector<ApId> out;
  out.reserve(aps_.size());
  for (const AccessPoint& ap : aps_)
    if (is_active(ap.id, t)) out.push_back(ap.id);
  return out;
}

std::optional<ApId> ApRegistry::find_bssid(const std::string& bssid) const {
  for (const AccessPoint& ap : aps_)
    if (ap.bssid == bssid) return ap.id;
  return std::nullopt;
}

std::vector<std::pair<SimTime, SimTime>> ApRegistry::outages_of(
    ApId id) const {
  WILOC_EXPECTS(id.index() < aps_.size());
  std::vector<std::pair<SimTime, SimTime>> out;
  for (const Outage& o : outages_[id.index()]) out.emplace_back(o.from, o.to);
  return out;
}

}  // namespace wiloc::rf
