#include "rf/io.hpp"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <string>

#include "util/contracts.hpp"

namespace wiloc::rf {

namespace {

[[noreturn]] void malformed(const std::string& what) {
  throw InvalidArgument("AP database: " + what);
}

std::string read_token(std::istream& is, const char* what) {
  std::string tok;
  if (!(is >> tok)) malformed(std::string("missing ") + what);
  return tok;
}

double read_double(std::istream& is, const char* what) {
  const std::string tok = read_token(is, what);
  if (tok == "inf") return std::numeric_limits<double>::infinity();
  try {
    return std::stod(tok);
  } catch (const std::exception&) {
    malformed(std::string("bad number for ") + what + ": '" + tok + "'");
  }
}

std::size_t read_count(std::istream& is, const char* what) {
  long long v;
  if (!(is >> v) || v < 0) malformed(std::string("missing count: ") + what);
  return static_cast<std::size_t>(v);
}

void expect_keyword(std::istream& is, const std::string& keyword) {
  const std::string tok = read_token(is, keyword.c_str());
  if (tok != keyword)
    malformed("expected '" + keyword + "', got '" + tok + "'");
}

}  // namespace

void write_ap_database(std::ostream& os, const ApRegistry& registry) {
  os.precision(17);
  os << "wiloc-apdb 1\n";
  os << "aps " << registry.count() << "\n";
  for (const AccessPoint& ap : registry.aps()) {
    os << ap.position.x << ' ' << ap.position.y << ' ' << ap.tx_power_dbm
       << ' ' << ap.path_loss_exponent << ' ' << ap.bssid << "\n";
  }
  std::size_t outage_count = 0;
  std::vector<std::string> lines;
  for (const AccessPoint& ap : registry.aps()) {
    for (const auto& window : registry.outages_of(ap.id)) {
      ++outage_count;
      std::string line = std::to_string(ap.id.value()) + " ";
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", window.first);
      line += buf;
      line += ' ';
      if (std::isinf(window.second)) {
        line += "inf";
      } else {
        std::snprintf(buf, sizeof buf, "%.17g", window.second);
        line += buf;
      }
      lines.push_back(std::move(line));
    }
  }
  os << "outages " << outage_count << "\n";
  for (const std::string& line : lines) os << line << "\n";
}

ApRegistry read_ap_database(std::istream& is) {
  expect_keyword(is, "wiloc-apdb");
  const std::string version = read_token(is, "version");
  if (version != "1") malformed("unsupported version " + version);

  ApRegistry registry;
  expect_keyword(is, "aps");
  const std::size_t count = read_count(is, "ap count");
  for (std::size_t i = 0; i < count; ++i) {
    const double x = read_double(is, "x");
    const double y = read_double(is, "y");
    const double power = read_double(is, "tx power");
    const double exponent = read_double(is, "exponent");
    (void)read_token(is, "bssid");  // synthetic; regenerated
    if (exponent <= 0.0) malformed("non-positive path-loss exponent");
    registry.add({x, y}, power, exponent);
  }

  expect_keyword(is, "outages");
  const std::size_t outages = read_count(is, "outage count");
  for (std::size_t i = 0; i < outages; ++i) {
    const std::size_t ap = read_count(is, "outage ap index");
    if (ap >= registry.count()) malformed("outage AP index out of range");
    const double from = read_double(is, "outage from");
    const double to = read_double(is, "outage to");
    if (!(from < to)) malformed("outage window must satisfy from < to");
    registry.add_outage(ApId(static_cast<ApId::underlying>(ap)), from, to);
  }
  return registry;
}

}  // namespace wiloc::rf
