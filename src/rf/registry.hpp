// AP registry with availability dynamics.
//
// APs come and go (reconfiguration, replacement, failure — paper
// Section III-B discusses losing AP `b`). The registry owns the AP set
// and tracks per-AP outage windows so both the simulator and the
// positioning stack agree on which APs exist at a given time.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rf/access_point.hpp"
#include "util/time.hpp"

namespace wiloc::rf {

/// Owning, append-only container of APs with outage schedules.
class ApRegistry {
 public:
  /// Adds an AP; the id and a synthetic BSSID are assigned by the
  /// registry. Requires tx_power_dbm < 0 is NOT required (reference
  /// powers are typically in [-45, -25] dBm at 1 m) but the exponent
  /// must be positive.
  ApId add(geo::Point position, double tx_power_dbm,
           double path_loss_exponent);

  std::size_t count() const { return aps_.size(); }
  const AccessPoint& ap(ApId id) const;
  const std::vector<AccessPoint>& aps() const { return aps_; }

  /// Marks the AP as down during [from, to). Multiple windows may be
  /// registered per AP. Requires from < to.
  void add_outage(ApId id, SimTime from, SimTime to);

  /// Marks the AP as permanently down starting at `from`.
  void retire(ApId id, SimTime from);

  /// True when the AP is transmitting at time t.
  bool is_active(ApId id, SimTime t) const;

  /// Ids of all APs transmitting at time t.
  std::vector<ApId> active_at(SimTime t) const;

  /// Resolves a BSSID back to an id, if known.
  std::optional<ApId> find_bssid(const std::string& bssid) const;

  /// The AP's outage windows as (from, to) pairs (to may be +infinity
  /// for a retired AP), in registration order.
  std::vector<std::pair<SimTime, SimTime>> outages_of(ApId id) const;

 private:
  struct Outage {
    SimTime from;
    SimTime to;  ///< exclusive; +infinity when retired
  };

  std::vector<AccessPoint> aps_;
  std::vector<std::vector<Outage>> outages_;
};

}  // namespace wiloc::rf
