// WiFi access points.
//
// The paper's substrate: geo-tagged APs (latitude/longitude known from
// Google Maps / Shaw Go WiFi) densely distributed along urban corridors.
// Each AP has its own transmit power and path-loss exponent — the spread
// in these parameters is exactly why the Signal Voronoi Diagram differs
// from the Euclidean Voronoi diagram (paper Section III-A).
#pragma once

#include <string>

#include "geo/geometry.hpp"
#include "util/ids.hpp"

namespace wiloc::rf {

struct ApTag {};
using ApId = StrongId<ApTag>;

/// A geo-tagged WiFi access point.
struct AccessPoint {
  ApId id;
  std::string bssid;      ///< "aa:bb:cc:dd:ee:ff"-style identifier
  geo::Point position;    ///< geo-tag in the local metric frame
  double tx_power_dbm;    ///< RSS at the 1 m reference distance
  double path_loss_exponent;  ///< log-distance exponent (urban: 2.7-4.0)
};

}  // namespace wiloc::rf
