// Cellular substrate for the Cell-ID baseline.
//
// The paper contrasts WiLocator with Cell-ID sequence matching
// ([15], [27]-[29]): towers are sparse (coverage ~800 m in cities), so a
// stable Cell-ID sequence takes minutes to capture and cannot separate
// overlapped road segments. We model towers with the same log-distance
// physics but far higher power and spacing; the observation is simply the
// strongest tower's id.
#pragma once

#include <optional>
#include <vector>

#include "geo/geometry.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace wiloc::rf {

struct TowerTag {};
using TowerId = StrongId<TowerTag>;

/// A cell tower.
struct CellTower {
  TowerId id;
  geo::Point position;
  double tx_power_dbm;        ///< reference power at 1 m (large)
  double path_loss_exponent;  ///< macro-cell exponent (~3.5)
};

/// One Cell-ID observation: the serving (strongest) tower at a time.
struct CellObservation {
  SimTime time = 0.0;
  TowerId tower;
};

/// Owning container of towers + the serving-tower observation model.
class TowerRegistry {
 public:
  TowerId add(geo::Point position, double tx_power_dbm = 30.0,
              double path_loss_exponent = 3.5);

  std::size_t count() const { return towers_.size(); }
  const CellTower& tower(TowerId id) const;
  const std::vector<CellTower>& towers() const { return towers_; }

  /// Expected RSS of a tower at x (log-distance, no noise).
  double mean_rss(const CellTower& tower, geo::Point x) const;

  /// Serving tower at x with `sigma_db` of handover noise; nullopt when
  /// the registry is empty.
  std::optional<CellObservation> observe(geo::Point x, SimTime t, Rng& rng,
                                         double sigma_db = 3.0) const;

 private:
  std::vector<CellTower> towers_;
};

}  // namespace wiloc::rf
