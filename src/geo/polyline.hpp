// Arc-length parameterized polylines.
//
// Road segments and bus routes are polylines; positions along them are
// expressed as arc-length offsets in meters ("route distance" in the
// paper's Eq. 9: dr(x, y) is the road length between x and y).
#pragma once

#include <vector>

#include "geo/geometry.hpp"

namespace wiloc::geo {

/// An immutable open polyline with at least two vertices, offering
/// O(log n) arc-length <-> point conversions.
class Polyline {
 public:
  /// Requires >= 2 vertices and no two consecutive duplicates.
  explicit Polyline(std::vector<Point> vertices);

  const std::vector<Point>& vertices() const { return vertices_; }
  std::size_t segment_count() const { return vertices_.size() - 1; }

  /// Total arc length in meters (> 0).
  double length() const { return cumulative_.back(); }

  Point front() const { return vertices_.front(); }
  Point back() const { return vertices_.back(); }

  /// Point at arc-length offset s; s is clamped into [0, length()].
  Point point_at(double s) const;

  /// Unit tangent of the polyline piece containing offset s.
  Vec tangent_at(double s) const;

  /// Projection of p onto the polyline.
  struct Projection {
    Point point;      ///< closest point on the polyline
    double offset;    ///< arc-length of that point
    double distance;  ///< |p - point|
  };
  Projection project(Point p) const;

  /// Arc length from offset a to offset b (non-negative; |b' - a'| after
  /// clamping both into [0, length()]).
  double arc_distance(double a, double b) const;

  /// Evenly spaced sample offsets with spacing <= step, always including
  /// both endpoints. Requires step > 0.
  std::vector<double> sample_offsets(double step) const;

  /// Concatenates polylines end-to-start into one. Requires each piece's
  /// end to coincide (within 1e-6 m) with the next piece's start.
  static Polyline concatenate(const std::vector<Polyline>& pieces);

 private:
  double clamp_offset(double s) const;

  std::vector<Point> vertices_;
  std::vector<double> cumulative_;  // cumulative_[i] = arc length to vertex i
};

}  // namespace wiloc::geo
