#include "geo/geometry.hpp"

#include <algorithm>

namespace wiloc::geo {

double project_parameter(Point p, Point a, Point b) {
  const Vec ab = b - a;
  const double len2 = ab.norm2();
  if (len2 == 0.0) return 0.0;
  return std::clamp((p - a).dot(ab) / len2, 0.0, 1.0);
}

Point project_on_segment(Point p, Point a, Point b) {
  return lerp(a, b, project_parameter(p, a, b));
}

double distance_to_segment(Point p, Point a, Point b) {
  return distance(p, project_on_segment(p, a, b));
}

Aabb::Aabb(Point min, Point max) : min_(min), max_(max), empty_(false) {
  WILOC_EXPECTS(min.x <= max.x && min.y <= max.y);
}

void Aabb::expand(Point p) {
  if (empty_) {
    min_ = max_ = p;
    empty_ = false;
    return;
  }
  min_.x = std::min(min_.x, p.x);
  min_.y = std::min(min_.y, p.y);
  max_.x = std::max(max_.x, p.x);
  max_.y = std::max(max_.y, p.y);
}

void Aabb::inflate(double margin) {
  WILOC_EXPECTS(margin >= 0.0);
  if (empty_) return;
  min_.x -= margin;
  min_.y -= margin;
  max_.x += margin;
  max_.y += margin;
}

}  // namespace wiloc::geo
