// Geodetic anchoring.
//
// The paper reports bus trajectories as <lat, long, t> tuples
// (Definition 6). Internally everything is metric; a LatLonAnchor converts
// between WGS-84 degrees and the local east/north frame with an
// equirectangular approximation — accurate to centimeters over the few
// kilometers a bus corridor spans.
#pragma once

#include "geo/geometry.hpp"

namespace wiloc::geo {

/// A WGS-84 coordinate in degrees.
struct LatLon {
  double latitude = 0.0;
  double longitude = 0.0;
};

/// Converts between LatLon and the local metric frame centered at an
/// origin coordinate.
class LatLonAnchor {
 public:
  /// Requires |latitude| < 89 degrees (the equirectangular scale
  /// degenerates at the poles).
  explicit LatLonAnchor(LatLon origin);

  LatLon origin() const { return origin_; }

  /// Local metric position of a geodetic coordinate.
  Point to_local(LatLon ll) const;

  /// Geodetic coordinate of a local metric position.
  LatLon to_latlon(Point p) const;

 private:
  LatLon origin_;
  double meters_per_deg_lat_;
  double meters_per_deg_lon_;
};

}  // namespace wiloc::geo
