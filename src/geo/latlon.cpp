#include "geo/latlon.hpp"

#include <cmath>

namespace wiloc::geo {

namespace {
constexpr double kDegToRad = M_PI / 180.0;
// WGS-84 derived mean radii; adequate for corridor-scale extents.
constexpr double kMetersPerDegLat = 111132.954;
constexpr double kEquatorMetersPerDegLon = 111319.488;
}  // namespace

LatLonAnchor::LatLonAnchor(LatLon origin) : origin_(origin) {
  WILOC_EXPECTS(std::abs(origin.latitude) < 89.0);
  meters_per_deg_lat_ = kMetersPerDegLat;
  meters_per_deg_lon_ =
      kEquatorMetersPerDegLon * std::cos(origin.latitude * kDegToRad);
}

Point LatLonAnchor::to_local(LatLon ll) const {
  return {(ll.longitude - origin_.longitude) * meters_per_deg_lon_,
          (ll.latitude - origin_.latitude) * meters_per_deg_lat_};
}

LatLon LatLonAnchor::to_latlon(Point p) const {
  return {origin_.latitude + p.y / meters_per_deg_lat_,
          origin_.longitude + p.x / meters_per_deg_lon_};
}

}  // namespace wiloc::geo
