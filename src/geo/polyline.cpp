#include "geo/polyline.hpp"

#include <algorithm>
#include <cmath>

namespace wiloc::geo {

Polyline::Polyline(std::vector<Point> vertices)
    : vertices_(std::move(vertices)) {
  WILOC_EXPECTS(vertices_.size() >= 2);
  cumulative_.reserve(vertices_.size());
  cumulative_.push_back(0.0);
  for (std::size_t i = 1; i < vertices_.size(); ++i) {
    const double d = distance(vertices_[i - 1], vertices_[i]);
    WILOC_EXPECTS(d > 0.0);
    cumulative_.push_back(cumulative_.back() + d);
  }
}

double Polyline::clamp_offset(double s) const {
  return std::clamp(s, 0.0, length());
}

Point Polyline::point_at(double s) const {
  s = clamp_offset(s);
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), s);
  std::size_t i = static_cast<std::size_t>(it - cumulative_.begin());
  if (i == 0) return vertices_.front();
  if (i >= vertices_.size()) return vertices_.back();
  const double seg_len = cumulative_[i] - cumulative_[i - 1];
  const double t = (s - cumulative_[i - 1]) / seg_len;
  return lerp(vertices_[i - 1], vertices_[i], t);
}

Vec Polyline::tangent_at(double s) const {
  s = clamp_offset(s);
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), s);
  std::size_t i = static_cast<std::size_t>(it - cumulative_.begin());
  i = std::clamp<std::size_t>(i, 1, vertices_.size() - 1);
  return (vertices_[i] - vertices_[i - 1]).normalized();
}

Polyline::Projection Polyline::project(Point p) const {
  Projection best{vertices_.front(), 0.0,
                  distance(p, vertices_.front())};
  for (std::size_t i = 0; i + 1 < vertices_.size(); ++i) {
    const double t = project_parameter(p, vertices_[i], vertices_[i + 1]);
    const Point q = lerp(vertices_[i], vertices_[i + 1], t);
    const double d = distance(p, q);
    if (d < best.distance) {
      best.point = q;
      best.distance = d;
      best.offset =
          cumulative_[i] + t * (cumulative_[i + 1] - cumulative_[i]);
    }
  }
  return best;
}

double Polyline::arc_distance(double a, double b) const {
  return std::abs(clamp_offset(b) - clamp_offset(a));
}

std::vector<double> Polyline::sample_offsets(double step) const {
  WILOC_EXPECTS(step > 0.0);
  const double len = length();
  const auto pieces =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(len / step)));
  std::vector<double> out;
  out.reserve(pieces + 1);
  for (std::size_t i = 0; i <= pieces; ++i)
    out.push_back(len * static_cast<double>(i) /
                  static_cast<double>(pieces));
  return out;
}

Polyline Polyline::concatenate(const std::vector<Polyline>& pieces) {
  WILOC_EXPECTS(!pieces.empty());
  std::vector<Point> verts = pieces.front().vertices();
  for (std::size_t i = 1; i < pieces.size(); ++i) {
    const auto& next = pieces[i].vertices();
    WILOC_EXPECTS(distance(verts.back(), next.front()) < 1e-6);
    verts.insert(verts.end(), next.begin() + 1, next.end());
  }
  return Polyline(std::move(verts));
}

}  // namespace wiloc::geo
