// Planar geometry primitives.
//
// The library works in a local metric frame: x east, y north, both in
// meters, anchored to a lat/long origin (see geo/latlon.hpp). Points and
// vectors are kept distinct (Core Guidelines P.1: express ideas in code).
#pragma once

#include <cmath>
#include <ostream>

#include "util/contracts.hpp"

namespace wiloc::geo {

/// Displacement in meters.
struct Vec {
  double x = 0.0;
  double y = 0.0;

  Vec operator+(Vec o) const { return {x + o.x, y + o.y}; }
  Vec operator-(Vec o) const { return {x - o.x, y - o.y}; }
  Vec operator*(double s) const { return {x * s, y * s}; }
  Vec operator/(double s) const { return {x / s, y / s}; }
  Vec operator-() const { return {-x, -y}; }

  double dot(Vec o) const { return x * o.x + y * o.y; }
  /// z-component of the 3D cross product; >0 when `o` is CCW from *this.
  double cross(Vec o) const { return x * o.y - y * o.x; }
  double norm2() const { return x * x + y * y; }
  double norm() const { return std::sqrt(norm2()); }

  /// Unit vector in the same direction. Requires non-zero length.
  Vec normalized() const {
    const double n = norm();
    WILOC_EXPECTS(n > 0.0);
    return {x / n, y / n};
  }

  /// 90-degree counter-clockwise rotation.
  Vec perp() const { return {-y, x}; }

  friend bool operator==(Vec a, Vec b) { return a.x == b.x && a.y == b.y; }
};

/// Position in meters in the local frame.
struct Point {
  double x = 0.0;
  double y = 0.0;

  Vec operator-(Point o) const { return {x - o.x, y - o.y}; }
  Point operator+(Vec v) const { return {x + v.x, y + v.y}; }
  Point operator-(Vec v) const { return {x - v.x, y - v.y}; }

  friend bool operator==(Point a, Point b) {
    return a.x == b.x && a.y == b.y;
  }
};

inline std::ostream& operator<<(std::ostream& os, Point p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

/// Euclidean distance between two points.
inline double distance(Point a, Point b) { return (b - a).norm(); }

/// Squared Euclidean distance (avoids the sqrt in hot loops).
inline double distance2(Point a, Point b) { return (b - a).norm2(); }

/// Linear interpolation: a at t=0, b at t=1.
inline Point lerp(Point a, Point b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

/// Closest point on segment [a, b] to p.
Point project_on_segment(Point p, Point a, Point b);

/// Distance from p to segment [a, b].
double distance_to_segment(Point p, Point a, Point b);

/// Parameter t in [0, 1] of the closest point on [a, b] to p
/// (0 when a == b).
double project_parameter(Point p, Point a, Point b);

/// Axis-aligned bounding box.
class Aabb {
 public:
  Aabb() = default;
  /// Requires min.x <= max.x and min.y <= max.y.
  Aabb(Point min, Point max);

  /// Smallest box containing both the box and the point.
  void expand(Point p);
  /// Grows the box by `margin` meters on every side.
  void inflate(double margin);

  bool contains(Point p) const {
    return !empty_ && p.x >= min_.x && p.x <= max_.x && p.y >= min_.y &&
           p.y <= max_.y;
  }
  bool empty() const { return empty_; }
  Point min() const { return min_; }
  Point max() const { return max_; }
  double width() const { return empty_ ? 0.0 : max_.x - min_.x; }
  double height() const { return empty_ ? 0.0 : max_.y - min_.y; }
  Point center() const {
    return {(min_.x + max_.x) / 2, (min_.y + max_.y) / 2};
  }

 private:
  Point min_{0, 0};
  Point max_{0, 0};
  bool empty_ = true;
};

}  // namespace wiloc::geo
