// Multi-trip, multi-day service simulation.
//
// Runs a service day for every route of a city (departures by headway)
// and returns the ground-truth trip records — the raw material for both
// the predictor's training history (the paper collects 3 weeks of data)
// and the test-day evaluation.
#pragma once

#include <vector>

#include "sim/bus_trip.hpp"
#include "sim/city.hpp"

namespace wiloc::sim {

/// Service frequency per route.
struct ServicePlan {
  double first_departure_tod;  ///< seconds since midnight
  double last_departure_tod;
  double headway_s;
};

/// One plan per city route, aligned with City::routes.
struct FleetPlan {
  std::vector<ServicePlan> per_route;
};

/// Typical urban service: rapid every 8 min, locals every 12-15 min,
/// 06:30-22:00.
FleetPlan default_fleet_plan(const City& city);

/// Simulates one service day (day index `day`). Trip ids continue from
/// `*next_trip_id`, which is advanced. When `keep_trajectories` is
/// false, the (large) trajectory vectors are dropped after simulation —
/// use for history days where only segment/stop timings matter.
std::vector<TripRecord> simulate_service_day(
    const City& city, const TrafficModel& traffic, const FleetPlan& plan,
    int day, Rng& rng, std::uint32_t* next_trip_id,
    bool keep_trajectories = true);

/// Simulates `day_count` consecutive days starting at `first_day`.
std::vector<TripRecord> simulate_service_days(
    const City& city, const TrafficModel& traffic, const FleetPlan& plan,
    int first_day, int day_count, Rng& rng,
    bool keep_trajectories = false);

}  // namespace wiloc::sim
