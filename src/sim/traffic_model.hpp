// The generative traffic model.
//
// Paper Eq. 3 decomposes a bus's travel time on segment e_i into a
// route-dependent mean mu_ij and a shared environment factor eps_i. The
// simulator generates traffic from exactly that model class:
//
//   speed(e, t) = speed_limit(e) * cruise_factor(route)
//                 / (rush_profile(e, tod) * daily_wiggle(e, day, tod))
//
// - rush_profile: deterministic two-bump (AM/PM) congestion curve with a
//   per-segment peak shift ("the rush hour may appear at different time
//   for different road segments" — Section IV);
// - daily_wiggle: a slowly varying (30-minute knots) per-(segment, day)
//   multiplicative noise, *shared by all routes* on the segment — this is
//   eps_i, and its temporal persistence is what makes the recent travel
//   times of other routes informative;
// - incidents: explicit crawl-speed windows on a stretch of a segment,
//   for the Fig. 11 anomaly experiments.
#pragma once

#include <vector>

#include "roadnet/network.hpp"
#include "util/hashing.hpp"
#include "util/time.hpp"

namespace wiloc::sim {

struct TrafficParams {
  double am_peak_tod = 9.0 * 3600;      ///< center of the AM rush
  double am_peak_sigma = 45.0 * 60;     ///< width (s)
  double am_peak_amplitude = 1.0;       ///< slowdown adds this at peak
  double pm_peak_tod = 18.5 * 3600;     ///< center of the PM rush
  double pm_peak_sigma = 30.0 * 60;
  double pm_peak_amplitude = 0.8;
  double peak_shift_max = 45.0 * 60;    ///< per-segment peak shift bound
  double wiggle_sigma = 0.22;           ///< daily multiplicative noise
  double wiggle_knot_spacing = 50.0 * 60;  ///< knot interval (s)
};

/// A traffic anomaly: traffic on `edge` within the offset window crawls
/// at `crawl_speed_mps` during [begin, end).
struct Incident {
  roadnet::EdgeId edge;
  double begin_edge_offset;
  double end_edge_offset;
  SimTime begin;
  SimTime end;
  double crawl_speed_mps;
};

/// Deterministic congestion oracle. Stateless per query: every value is a
/// pure function of (seed, segment, time), so simulator and analysis see
/// the same world.
class TrafficModel {
 public:
  explicit TrafficModel(std::uint64_t seed, TrafficParams params = {});

  /// Multiplicative slowdown >= 1 for the segment at time t (the divisor
  /// on free-flow speed). Excludes incidents.
  double slowdown(roadnet::EdgeId edge, SimTime t) const;

  /// The deterministic rush-hour component alone (no daily noise).
  double rush_profile(roadnet::EdgeId edge, double tod) const;

  /// The shared environment noise alone (eps_i's generative source).
  double daily_wiggle(roadnet::EdgeId edge, SimTime t) const;

  /// Registers an incident window. Requires begin < end and a valid
  /// offset window.
  void add_incident(const Incident& incident);
  const std::vector<Incident>& incidents() const { return incidents_; }

  /// Speed cap (m/s) from incidents at this exact spot/time; +infinity
  /// when unaffected.
  double incident_cap(roadnet::EdgeId edge, double edge_offset,
                      SimTime t) const;

  const TrafficParams& params() const { return params_; }

 private:
  double peak_shift(roadnet::EdgeId edge) const;

  std::uint64_t seed_;
  TrafficParams params_;
  std::vector<Incident> incidents_;
};

}  // namespace wiloc::sim
