// Crowd sensing — riders' phones scanning WiFi on a moving bus.
//
// The paper's data source: COTS smartphones carried by the driver and
// riders scan every 10 s and report {SSID, BSSID, RSS, timestamp} to the
// server with zero rider effort. Multiple riders on the same bus are
// merged into one averaged scan (the "average RSS rank ... sensed by
// multiple devices remains relatively stable" observation).
#pragma once

#include <vector>

#include "rf/scan.hpp"
#include "sim/bus_trip.hpp"

namespace wiloc::sim {

/// One report delivered to the server: which trip produced which scan.
/// (In the real system the trip is identified by route announcement
/// voice capture / driver input — Section V-A1; the simulator knows it.)
struct ScanReport {
  TripId trip;
  roadnet::RouteId route;
  rf::WifiScan scan;
};

struct CrowdParams {
  double scan_period_s = 10.0;  ///< the paper's scanning period
  std::size_t riders = 3;       ///< phones scanning on the bus
  double lateral_jitter_m = 1.2;  ///< rider positions inside the bus
};

/// Generates the scan reports of one trip: every scan_period_s, each
/// rider scans at the bus's ground-truth position (with a little
/// in-vehicle jitter) and the scans are merged.
std::vector<ScanReport> sense_trip(const TripRecord& trip,
                                   const roadnet::BusRoute& route,
                                   const rf::ApRegistry& registry,
                                   const rf::PropagationModel& model,
                                   const rf::Scanner& scanner, Rng& rng,
                                   CrowdParams params = {});

}  // namespace wiloc::sim
