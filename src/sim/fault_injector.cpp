#include "sim/fault_injector.hpp"

#include <algorithm>
#include <limits>

#include "util/contracts.hpp"

namespace wiloc::sim {

FaultProfile FaultProfile::uniform(double p) {
  WILOC_EXPECTS(p >= 0.0 && p <= 1.0);
  FaultProfile profile;
  profile.drop = p;
  profile.delay = p;
  profile.duplicate = p;
  profile.corrupt_rssi = p;
  profile.clock_skew = p;
  profile.ap_churn = p;
  profile.ap_outage = p;
  return profile;
}

FaultInjector::FaultInjector(FaultProfile profile, std::uint64_t seed)
    : profile_(profile), rng_(seed) {
  WILOC_EXPECTS(profile_.max_delay_slots >= 1);
  WILOC_EXPECTS(profile_.skew_sigma_s >= 0.0);
}

void FaultInjector::corrupt_readings(rf::WifiScan& scan) {
  if (scan.readings.empty()) return;
  const auto hits = static_cast<std::size_t>(rng_.uniform_int(
      1, static_cast<std::int64_t>(std::min<std::size_t>(3,
                                       scan.readings.size()))));
  for (std::size_t h = 0; h < hits; ++h) {
    auto& r = scan.readings[static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(scan.readings.size()) - 1))];
    switch (rng_.uniform_int(0, 3)) {
      case 0: r.rssi_dbm = std::numeric_limits<double>::quiet_NaN(); break;
      case 1: r.rssi_dbm = -std::numeric_limits<double>::infinity(); break;
      case 2: r.rssi_dbm = rng_.uniform(10.0, 120.0); break;   // impossible
      default: r.rssi_dbm = rng_.uniform(-250.0, -130.0); break;  // junk
    }
  }
  ++counters_.corrupted;
}

void FaultInjector::churn_readings(rf::WifiScan& scan) {
  if (scan.readings.empty()) return;
  const auto hits = static_cast<std::size_t>(rng_.uniform_int(
      1, static_cast<std::int64_t>(std::min<std::size_t>(2,
                                       scan.readings.size()))));
  for (std::size_t h = 0; h < hits; ++h) {
    auto& r = scan.readings[static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(scan.readings.size()) - 1))];
    r.ap = rf::ApId(next_phantom_++);
  }
  ++counters_.churned;
}

void FaultInjector::silence_ap(rf::WifiScan& scan) {
  if (scan.readings.empty()) return;
  const rf::ApId victim =
      scan.readings[static_cast<std::size_t>(rng_.uniform_int(
                        0, static_cast<std::int64_t>(scan.readings.size()) -
                               1))]
          .ap;
  scan.readings.erase(
      std::remove_if(scan.readings.begin(), scan.readings.end(),
                     [victim](const rf::ApReading& r) {
                       return r.ap == victim;
                     }),
      scan.readings.end());
  ++counters_.silenced;
}

std::vector<ScanReport> FaultInjector::apply(
    const std::vector<ScanReport>& reports) {
  // Each surviving report gets an arrival key = its stream index, pushed
  // back by a few slots when delayed; a stable sort by key yields the
  // arrival order (duplicates ride immediately behind their original).
  struct Arrival {
    std::size_t key;
    ScanReport report;
  };
  std::vector<Arrival> arrivals;
  arrivals.reserve(reports.size());

  for (std::size_t i = 0; i < reports.size(); ++i) {
    ++counters_.input;
    if (rng_.bernoulli(profile_.drop)) {
      ++counters_.dropped;
      continue;
    }
    ScanReport report = reports[i];
    if (rng_.bernoulli(profile_.clock_skew)) {
      report.scan.time += rng_.normal(0.0, profile_.skew_sigma_s);
      ++counters_.skewed;
    }
    if (rng_.bernoulli(profile_.corrupt_rssi)) corrupt_readings(report.scan);
    if (rng_.bernoulli(profile_.ap_churn)) churn_readings(report.scan);
    if (rng_.bernoulli(profile_.ap_outage)) silence_ap(report.scan);

    std::size_t key = i;
    if (rng_.bernoulli(profile_.delay)) {
      key += static_cast<std::size_t>(rng_.uniform_int(
          1, static_cast<std::int64_t>(profile_.max_delay_slots)));
      ++counters_.delayed;
    }
    if (rng_.bernoulli(profile_.duplicate)) {
      arrivals.push_back({key, report});
      ++counters_.duplicated;
    }
    arrivals.push_back({key, std::move(report)});
  }

  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const Arrival& a, const Arrival& b) {
                     return a.key < b.key;
                   });
  std::vector<ScanReport> out;
  out.reserve(arrivals.size());
  for (Arrival& a : arrivals) out.push_back(std::move(a.report));
  counters_.emitted += out.size();
  return out;
}

// -- crash injection -------------------------------------------------------

const char* to_string(CrashPoint point) {
  switch (point) {
    case CrashPoint::none: return "none";
    case CrashPoint::mid_journal_append: return "mid_journal_append";
    case CrashPoint::torn_journal_frame: return "torn_journal_frame";
    case CrashPoint::mid_snapshot_rename: return "mid_snapshot_rename";
  }
  return "?";
}

std::string_view site_of(CrashPoint point) {
  switch (point) {
    case CrashPoint::none: return {};
    case CrashPoint::mid_journal_append: return journal::kSiteAppendMid;
    case CrashPoint::torn_journal_frame: return journal::kSiteAppendTorn;
    case CrashPoint::mid_snapshot_rename:
      return journal::kSiteSnapshotPreRename;
  }
  return {};
}

CrashInjector::CrashInjector(CrashPoint point, std::uint64_t trigger_on)
    : point_(point), trigger_on_(trigger_on) {
  WILOC_EXPECTS(trigger_on >= 1);
}

journal::FailureHook CrashInjector::hook() {
  return [this](std::string_view site) {
    if (fired_ || point_ == CrashPoint::none) return;
    if (site != site_of(point_)) return;
    if (++hits_ < trigger_on_) return;
    fired_ = true;
    throw CrashError(site);
  };
}

void CrashInjector::rearm(std::uint64_t trigger_on) {
  WILOC_EXPECTS(trigger_on >= 1);
  trigger_on_ = trigger_on;
  hits_ = 0;
  fired_ = false;
}

}  // namespace wiloc::sim
