// Single bus trip kinematics.
//
// Integrates a bus along its route under the traffic model, dwelling at
// stops and occasionally waiting at intersections (traffic lights). The
// result is the ground truth everything else is measured against: a
// dense trajectory plus exact segment entry/exit and stop arrival times.
#pragma once

#include <vector>

#include "roadnet/route.hpp"
#include "sim/traffic_model.hpp"
#include "util/rng.hpp"

namespace wiloc::sim {

using roadnet::TripId;

/// Per-route driving characteristics. A rapid line cruises faster and
/// dwells less; this is the mu_ij route-dependent factor of Eq. 3.
struct RouteProfile {
  double cruise_factor = 0.75;     ///< fraction of the speed limit held
  double dwell_mean_s = 18.0;      ///< mean stop dwell
  double dwell_sigma_s = 6.0;      ///< dwell noise (truncated at >= 2 s)
  double light_stop_probability = 0.35;  ///< chance of a red light
  double light_wait_mean_s = 25.0;       ///< mean red-light wait
};

/// Ground-truth position sample.
struct TrajectorySample {
  SimTime time;
  double route_offset;
};

/// Exact segment traversal times (edge index within the route).
struct SegmentTiming {
  std::size_t edge_index;
  SimTime enter;
  SimTime exit;
  double travel_time() const { return exit - enter; }
};

/// Exact stop service times.
struct StopTiming {
  std::size_t stop_index;
  SimTime arrive;
  SimTime depart;
};

/// The full ground truth of one simulated trip.
struct TripRecord {
  TripId id;
  roadnet::RouteId route;
  SimTime start_time = 0.0;
  SimTime end_time = 0.0;
  std::vector<TrajectorySample> trajectory;  ///< ~1 Hz, offset monotone
  std::vector<SegmentTiming> segments;       ///< one per route edge
  std::vector<StopTiming> stops;             ///< one per route stop

  /// Ground-truth route offset at time t (clamped to the trip's span).
  double offset_at(SimTime t) const;

  /// Ground-truth arrival time at the stop. Requires a valid index.
  SimTime arrival_at_stop(std::size_t stop_index) const;
};

struct BusTripParams {
  double integration_dt_s = 0.5;   ///< kinematic step
  double sample_period_s = 1.0;    ///< trajectory recording period
  double min_speed_mps = 0.5;      ///< traffic never fully stops (jam crawl)
};

/// Simulates one trip of `route` starting at `start_time`.
/// `trip_id` labels the record; `rng` supplies dwell/light noise.
TripRecord simulate_trip(TripId trip_id, const roadnet::BusRoute& route,
                         const RouteProfile& profile,
                         const TrafficModel& traffic, SimTime start_time,
                         Rng& rng, BusTripParams params = {});

}  // namespace wiloc::sim
