#include "sim/gps.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace wiloc::sim {

GpsSimulator::GpsSimulator(GpsParams params) : params_(params) {
  WILOC_EXPECTS(params_.open_sky_sigma_m >= 0.0);
  WILOC_EXPECTS(params_.canyon_sigma_m >= params_.open_sky_sigma_m);
  WILOC_EXPECTS(params_.canyon_fraction >= 0.0 &&
                params_.canyon_fraction <= 1.0);
  WILOC_EXPECTS(params_.canyon_cell_m > 0.0);
  WILOC_EXPECTS(params_.canyon_outage_prob >= 0.0 &&
                params_.canyon_outage_prob <= 1.0);
}

bool GpsSimulator::in_canyon(geo::Point p) const {
  const auto ix = static_cast<std::int64_t>(
      std::floor(p.x / params_.canyon_cell_m));
  const auto iy = static_cast<std::int64_t>(
      std::floor(p.y / params_.canyon_cell_m));
  const double u = hash_to_unit(hash_coords(
      params_.seed, static_cast<std::uint64_t>(ix),
      static_cast<std::uint64_t>(iy)));
  return u < params_.canyon_fraction;
}

std::optional<geo::Point> GpsSimulator::sample(geo::Point true_position,
                                               Rng& rng) const {
  const bool canyon = in_canyon(true_position);
  if (canyon && rng.bernoulli(params_.canyon_outage_prob))
    return std::nullopt;
  const double sigma =
      canyon ? params_.canyon_sigma_m : params_.open_sky_sigma_m;
  return geo::Point{true_position.x + rng.normal(0.0, sigma),
                    true_position.y + rng.normal(0.0, sigma)};
}

}  // namespace wiloc::sim
