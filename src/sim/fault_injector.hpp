// Fault injection over a crowd-sensed scan stream.
//
// A composable chaos wrapper for testing the server's guarded ingest
// path: takes the clean, time-ordered report stream a simulated trip
// produced and perturbs it the way a real deployment would — reports get
// dropped by the cellular uplink, delayed and re-ordered in transit,
// duplicated by retries, RSSI-corrupted by broken radios, clock-skewed
// by bad phone clocks, and polluted by AP churn (APs the positioning
// index has never seen appear; known APs black out). Every fault class
// has an independent probability, all randomness comes from the
// deterministic wiloc::Rng, and counters record exactly what was done so
// tests can reconcile injected faults against the server's IngestStats.
//
// Injectors compose: chain apply() calls (with different profiles or
// seeds) to stack fault classes.
//
// Beyond stream faults, CrashInjector simulates the *process* dying at
// a chosen point inside the persistence layer (mid journal append, torn
// final frame, between snapshot write and rename). It plugs into
// PersistenceConfig::failure_hook; the bytes written before the crash
// point stay on disk exactly as a real kill -9 would leave them, and
// the recovery path is then exercised by constructing a fresh server
// over the same state directory.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/crowd.hpp"
#include "util/contracts.hpp"
#include "util/journal.hpp"
#include "util/rng.hpp"

namespace wiloc::sim {

/// Per-fault-class probabilities (each evaluated independently per
/// report, except `drop` which short-circuits the rest).
struct FaultProfile {
  double drop = 0.0;        ///< report lost entirely
  double delay = 0.0;       ///< delivered 1..max_delay_slots reports late
                            ///< (timestamp unchanged -> reordering)
  double duplicate = 0.0;   ///< retry: the report is delivered twice
  double corrupt_rssi = 0.0; ///< 1..3 readings get NaN / +dBm garbage
  double clock_skew = 0.0;  ///< timestamp shifted by N(0, skew_sigma_s)
  double ap_churn = 0.0;    ///< 1..2 readings re-labelled with AP ids the
                            ///< index has never seen
  double ap_outage = 0.0;   ///< registry outage: one AP heard in the
                            ///< scan goes silent (readings removed)
  std::size_t max_delay_slots = 3;
  double skew_sigma_s = 15.0;

  /// Every fault class at probability p (delay slots / sigma defaulted).
  static FaultProfile uniform(double p);
};

/// What the injector actually did to a stream.
struct FaultCounters {
  std::uint64_t input = 0;       ///< reports seen
  std::uint64_t emitted = 0;     ///< reports delivered
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;   ///< reports with >= 1 corrupted reading
  std::uint64_t skewed = 0;
  std::uint64_t churned = 0;     ///< reports with >= 1 re-labelled AP
  std::uint64_t silenced = 0;    ///< reports that lost an AP to outage
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultProfile profile, std::uint64_t seed = 1);

  /// Perturbs a time-ordered report stream into the *arrival* stream the
  /// server would see. The result is in arrival order, which under delay
  /// faults is no longer timestamp order. Counters accumulate across
  /// calls.
  std::vector<ScanReport> apply(const std::vector<ScanReport>& reports);

  const FaultCounters& counters() const { return counters_; }

  /// First synthetic AP id used for churned readings; ids at or above
  /// this value never collide with registry-assigned APs.
  static constexpr std::uint32_t kPhantomApBase = 1u << 30;

 private:
  void corrupt_readings(rf::WifiScan& scan);
  void churn_readings(rf::WifiScan& scan);
  void silence_ap(rf::WifiScan& scan);

  FaultProfile profile_;
  Rng rng_;
  FaultCounters counters_;
  std::uint32_t next_phantom_ = kPhantomApBase;
};

// -- crash injection -------------------------------------------------------

/// Thrown by CrashInjector to simulate the process dying inside a
/// persistence write. Harness code catches it where a supervisor would
/// observe the process exit; nothing below the throw site runs, and the
/// journal writer it unwinds through poisons itself so destructors
/// cannot complete the interrupted write.
class CrashError : public Error {
 public:
  explicit CrashError(std::string_view site)
      : Error("simulated crash at " + std::string(site)), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// Where in the persistence layer the simulated process death happens.
enum class CrashPoint {
  none,                 ///< never crash (pass-through hook)
  mid_journal_append,   ///< frame header on disk, payload missing
  torn_journal_frame,   ///< header + half the payload: torn final frame
  mid_snapshot_rename,  ///< snapshot tmp complete, rename not performed
};

const char* to_string(CrashPoint point);
/// The journal-layer hook site a CrashPoint arms (empty for none).
std::string_view site_of(CrashPoint point);

/// A one-shot FailureHook: throws CrashError the `trigger_on`-th time
/// the armed site is reached, then goes inert (the "restarted" process
/// must not crash again unless re-armed). Pass `hook()` as
/// PersistenceConfig::failure_hook.
class CrashInjector {
 public:
  explicit CrashInjector(CrashPoint point, std::uint64_t trigger_on = 1);

  /// The FailureHook to install (shares this injector's state; the
  /// injector must outlive the config using it).
  journal::FailureHook hook();

  CrashPoint point() const { return point_; }
  /// Times the armed site has been reached so far.
  std::uint64_t hits() const { return hits_; }
  /// True once the crash fired (the injector is inert afterwards).
  bool fired() const { return fired_; }
  /// Re-arms the injector for another crash at the same point.
  void rearm(std::uint64_t trigger_on = 1);

 private:
  CrashPoint point_;
  std::uint64_t trigger_on_;
  std::uint64_t hits_ = 0;
  bool fired_ = false;
};

}  // namespace wiloc::sim
