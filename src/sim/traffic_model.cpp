#include "sim/traffic_model.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace wiloc::sim {

TrafficModel::TrafficModel(std::uint64_t seed, TrafficParams params)
    : seed_(seed), params_(params) {
  WILOC_EXPECTS(params_.am_peak_sigma > 0.0);
  WILOC_EXPECTS(params_.pm_peak_sigma > 0.0);
  WILOC_EXPECTS(params_.wiggle_knot_spacing > 0.0);
  WILOC_EXPECTS(params_.wiggle_sigma >= 0.0);
}

double TrafficModel::peak_shift(roadnet::EdgeId edge) const {
  return params_.peak_shift_max *
         hash_to_pm1(hash_coords(seed_, edge.value(), 0xbeef));
}

double TrafficModel::rush_profile(roadnet::EdgeId edge, double tod) const {
  const double shift = peak_shift(edge);
  const auto bump = [&](double center, double sigma, double amplitude) {
    const double d = (tod - (center + shift)) / sigma;
    return amplitude * std::exp(-0.5 * d * d);
  };
  return 1.0 +
         bump(params_.am_peak_tod, params_.am_peak_sigma,
              params_.am_peak_amplitude) +
         bump(params_.pm_peak_tod, params_.pm_peak_sigma,
              params_.pm_peak_amplitude);
}

double TrafficModel::daily_wiggle(roadnet::EdgeId edge, SimTime t) const {
  if (params_.wiggle_sigma == 0.0) return 1.0;
  const int day = day_of(t);
  const double tod = time_of_day(t);
  const double knot_pos = tod / params_.wiggle_knot_spacing;
  const auto k0 = static_cast<std::uint64_t>(std::floor(knot_pos));
  const double frac = knot_pos - std::floor(knot_pos);
  const auto knot_value = [&](std::uint64_t k) {
    const std::uint64_t h = hash_coords(
        seed_ ^ 0x77faULL, edge.value(),
        static_cast<std::uint64_t>(day), k);
    return std::exp(params_.wiggle_sigma * hash_to_pm1(h));
  };
  const double v0 = knot_value(k0);
  const double v1 = knot_value(k0 + 1);
  return v0 + (v1 - v0) * frac;
}

double TrafficModel::slowdown(roadnet::EdgeId edge, SimTime t) const {
  return rush_profile(edge, time_of_day(t)) * daily_wiggle(edge, t);
}

void TrafficModel::add_incident(const Incident& incident) {
  WILOC_EXPECTS(incident.begin < incident.end);
  WILOC_EXPECTS(incident.begin_edge_offset < incident.end_edge_offset);
  WILOC_EXPECTS(incident.crawl_speed_mps > 0.0);
  incidents_.push_back(incident);
}

double TrafficModel::incident_cap(roadnet::EdgeId edge, double edge_offset,
                                  SimTime t) const {
  double cap = std::numeric_limits<double>::infinity();
  for (const Incident& inc : incidents_) {
    if (inc.edge == edge && t >= inc.begin && t < inc.end &&
        edge_offset >= inc.begin_edge_offset &&
        edge_offset <= inc.end_edge_offset) {
      cap = std::min(cap, inc.crawl_speed_mps);
    }
  }
  return cap;
}

}  // namespace wiloc::sim
