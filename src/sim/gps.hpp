// GPS simulation for the GPS-tracking baseline.
//
// The paper's motivation: GPS "works poorly in urban environments due to
// the city geometry (urban canyons)" — high-rises and tunnels block the
// line of sight, inflating error or killing the fix entirely. The
// simulator models canyon stretches along the corridor where the error
// blows up and fixes are frequently lost.
#pragma once

#include <optional>

#include "geo/geometry.hpp"
#include "util/hashing.hpp"
#include "util/rng.hpp"

namespace wiloc::sim {

struct GpsParams {
  double open_sky_sigma_m = 5.0;    ///< error std in open sky
  double canyon_sigma_m = 35.0;     ///< error std inside a canyon
  double canyon_fraction = 0.35;    ///< fraction of the map in canyons
  double canyon_cell_m = 250.0;     ///< canyon patch size
  double canyon_outage_prob = 0.30; ///< chance of no fix in a canyon
  std::uint64_t seed = 4242;        ///< canyon layout seed
};

/// Spatially patterned GPS error model. Canyon layout is a deterministic
/// function of position (hash-based patches), so repeated passes suffer
/// in the same places — as real corridors do.
class GpsSimulator {
 public:
  explicit GpsSimulator(GpsParams params = {});

  /// Whether the position lies in an urban-canyon patch.
  bool in_canyon(geo::Point p) const;

  /// One GPS fix at the true position; nullopt on outage.
  std::optional<geo::Point> sample(geo::Point true_position, Rng& rng) const;

  const GpsParams& params() const { return params_; }

 private:
  GpsParams params_;
};

}  // namespace wiloc::sim
