#include "sim/chaos_proxy.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/contracts.hpp"

namespace wiloc::sim {

namespace {

/// Blocking sends are bounded so a wedged peer cannot wedge stop().
void bound_io_timeouts(int fd) {
  timeval tv{};
  tv.tv_sec = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

}  // namespace

ChaosProfile ChaosProfile::uniform(double p) {
  WILOC_EXPECTS(p >= 0.0 && p <= 1.0);
  ChaosProfile profile;
  profile.refuse = p;
  profile.delay = p;
  profile.split = p;
  profile.corrupt = p;
  profile.truncate = p;
  profile.kill_response = p;
  return profile;
}

ChaosProxy::ChaosProxy(std::uint16_t upstream_port, ChaosProfile profile,
                       std::uint64_t seed, obs::Registry* registry)
    : upstream_port_(upstream_port),
      profile_(profile),
      rng_(seed),
      registry_(registry) {
  if (registry_ != nullptr) {
    obs::Registry& r = *registry_;
    m_connections_ = &r.counter("net.chaos.connections");
    m_refused_ = &r.counter("net.chaos.refused");
    m_truncated_ = &r.counter("net.chaos.truncated_requests");
    m_killed_ = &r.counter("net.chaos.killed_responses");
    m_delayed_ = &r.counter("net.chaos.delayed_chunks");
    m_split_ = &r.counter("net.chaos.split_chunks");
    m_corrupted_ = &r.counter("net.chaos.corrupted_chunks");
    m_bytes_to_server_ = &r.counter("net.chaos.bytes_to_server");
    m_bytes_to_client_ = &r.counter("net.chaos.bytes_to_client");
  }
}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::start() {
  WILOC_EXPECTS(!running());
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw Error("chaos proxy: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // ephemeral
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("chaos proxy: bind/listen failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void ChaosProxy::stop() noexcept {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::thread> relays;
  {
    std::lock_guard<std::mutex> lock(relays_mu_);
    relays.swap(relays_);
  }
  for (std::thread& t : relays)
    if (t.joinable()) t.join();
}

ChaosCounters ChaosProxy::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

void ChaosProxy::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int client_fd = ::accept4(listen_fd_, nullptr, nullptr,
                                    SOCK_CLOEXEC);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load(std::memory_order_acquire)) return;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.connections;
    }
    if (m_connections_ != nullptr) m_connections_->inc();

    // The connection's whole fault plan comes from the accept-thread
    // rng: same seed + same arrival order => same faults.
    ConnPlan plan(rng_.fork());
    plan.refuse = rng_.bernoulli(profile_.refuse);
    plan.truncate = rng_.bernoulli(profile_.truncate);
    plan.kill_response = rng_.bernoulli(profile_.kill_response);

    if (plan.refuse) {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.refused;
      }
      if (m_refused_ != nullptr) m_refused_->inc();
      ::close(client_fd);
      continue;
    }
    bound_io_timeouts(client_fd);
    const int nodelay = 1;
    ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                 sizeof nodelay);
    std::lock_guard<std::mutex> lock(relays_mu_);
    relays_.emplace_back(
        [this, client_fd, plan] { relay(client_fd, plan); });
  }
}

bool ChaosProxy::forward(int dst_fd, char* data, std::size_t len,
                         ConnPlan& plan, bool to_server) {
  if (plan.rng.bernoulli(profile_.corrupt)) {
    const auto i = static_cast<std::size_t>(
        plan.rng.uniform_int(0, static_cast<std::int64_t>(len) - 1));
    data[i] = static_cast<char>(data[i] ^ 0x40);
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.corrupted_chunks;
    }
    if (m_corrupted_ != nullptr) m_corrupted_->inc();
  }
  if (profile_.delay_ms_max > 0.0 && plan.rng.bernoulli(profile_.delay)) {
    const double ms = plan.rng.uniform(0.0, profile_.delay_ms_max);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.delayed_chunks;
    }
    if (m_delayed_ != nullptr) m_delayed_->inc();
  }
  const bool split = plan.rng.bernoulli(profile_.split);
  if (split) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.split_chunks;
  }
  if (split && m_split_ != nullptr) m_split_->inc();

  std::size_t sent = 0;
  while (sent < len) {
    const std::size_t piece = split ? 1 : len - sent;
    const ssize_t n = ::send(dst_fd, data + sent, piece, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    if (to_server)
      counters_.bytes_to_server += len;
    else
      counters_.bytes_to_client += len;
  }
  if (to_server && m_bytes_to_server_ != nullptr) m_bytes_to_server_->inc(len);
  if (!to_server && m_bytes_to_client_ != nullptr) m_bytes_to_client_->inc(len);
  return true;
}

void ChaosProxy::relay(int client_fd, ConnPlan plan) {
  const int server_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(upstream_port_);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (server_fd < 0 ||
      ::connect(server_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0) {
    if (server_fd >= 0) ::close(server_fd);
    ::close(client_fd);
    return;
  }
  bound_io_timeouts(server_fd);
  const int one = 1;
  ::setsockopt(server_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  bool client_open = true;   // client -> server direction still relayed
  bool server_open = true;   // server -> client direction still relayed
  bool to_server_cut = false;
  char buf[8 * 1024];
  while ((client_open || server_open) &&
         running_.load(std::memory_order_acquire)) {
    pollfd pfds[2];
    pfds[0] = {client_fd, static_cast<short>(client_open ? POLLIN : 0), 0};
    pfds[1] = {server_fd, static_cast<short>(server_open ? POLLIN : 0), 0};
    const int rc = ::poll(pfds, 2, 50);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;

    if (client_open && (pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      const ssize_t n = ::recv(client_fd, buf, sizeof buf, 0);
      if (n <= 0) {
        client_open = false;
        ::shutdown(server_fd, SHUT_WR);  // propagate half-close
      } else if (!to_server_cut) {
        if (plan.truncate) {
          // Swallow the tail of the request mid-chunk but keep the
          // connection open (an EOF would just be closed silently): the
          // server holds half a request and must 408 it on its stall
          // sweep. At least one byte goes through so the parser is
          // demonstrably mid-request.
          const auto keep =
              n < 2 ? static_cast<std::size_t>(n)
                    : 1 + static_cast<std::size_t>(plan.rng.uniform_int(
                              0, static_cast<std::int64_t>(n) - 2));
          forward(server_fd, buf, keep, plan, true);
          to_server_cut = true;
          {
            std::lock_guard<std::mutex> lock(counters_mu_);
            ++counters_.truncated;
          }
          if (m_truncated_ != nullptr) m_truncated_->inc();
        } else if (!forward(server_fd, buf, static_cast<std::size_t>(n), plan,
                            true)) {
          break;
        }
      }
    }
    if (server_open && (pfds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      const ssize_t n = ::recv(server_fd, buf, sizeof buf, 0);
      if (n <= 0) {
        server_open = false;
        ::shutdown(client_fd, SHUT_WR);
        // Nothing more can come back; if the client already half-closed
        // too, the relay is done.
        if (!client_open) break;
      } else if (plan.kill_response) {
        // Forward part of the response, then die mid-body — the torn
        // read every client on a flaky uplink eventually sees.
        const auto keep = static_cast<std::size_t>(
            plan.rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        if (keep > 0) forward(client_fd, buf, keep, plan, false);
        {
          std::lock_guard<std::mutex> lock(counters_mu_);
          ++counters_.killed_responses;
        }
        if (m_killed_ != nullptr) m_killed_->inc();
        break;
      } else if (!forward(client_fd, buf, static_cast<std::size_t>(n), plan,
                          false)) {
        break;
      }
    }
  }
  ::close(server_fd);
  ::close(client_fd);
}

}  // namespace wiloc::sim
