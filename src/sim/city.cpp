#include "sim/city.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace wiloc::sim {

namespace {

using roadnet::EdgeId;
using roadnet::NodeId;
using roadnet::RoadNetwork;
using roadnet::RouteId;
using roadnet::Stop;

/// Evenly spaced stops (first at offset 0, last at route end).
std::vector<Stop> even_stops(double route_length, std::size_t count,
                             const std::string& prefix) {
  WILOC_EXPECTS(count >= 2);
  std::vector<Stop> stops;
  stops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double offset = route_length * static_cast<double>(i) /
                          static_cast<double>(count - 1);
    stops.push_back({prefix + "_s" + std::to_string(i), offset});
  }
  return stops;
}

double route_edges_length(const RoadNetwork& net,
                          const std::vector<EdgeId>& edges) {
  double len = 0.0;
  for (const EdgeId e : edges) len += net.edge(e).length();
  return len;
}

/// Places storefront APs along the given edges: both street sides,
/// jittered along and across.
void place_aps(rf::ApRegistry& aps, const RoadNetwork& net,
               const std::vector<EdgeId>& edges, double density_per_km,
               Rng& rng) {
  for (const EdgeId e : edges) {
    const auto& geom = net.edge(e).geometry();
    const double len = geom.length();
    const auto count = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::round(density_per_km * len / 1000.0)));
    for (std::size_t i = 0; i < count; ++i) {
      // Stratified placement along the edge with jitter, so coverage has
      // no long gaps even at low density.
      const double base = len * (static_cast<double>(i) + 0.5) /
                          static_cast<double>(count);
      const double along =
          std::clamp(base + rng.normal(0.0, len / (4.0 * count + 1)), 0.0,
                     len);
      const geo::Point on_road = geom.point_at(along);
      const geo::Vec lateral = geom.tangent_at(along).perp();
      const double side = (i % 2 == 0) ? 1.0 : -1.0;
      const double setback = rng.uniform(12.0, 28.0);
      const geo::Point pos = on_road + lateral * (side * setback);
      aps.add(pos, rng.uniform(-38.0, -28.0), rng.uniform(2.6, 3.4));
    }
  }
}

}  // namespace

const roadnet::BusRoute& City::route_by_name(const std::string& name) const {
  for (const auto& r : routes)
    if (r.name() == name) return r;
  throw NotFound("no route named '" + name + "'");
}

const RouteProfile& City::profile_of(roadnet::RouteId id) const {
  for (std::size_t i = 0; i < routes.size(); ++i)
    if (routes[i].id() == id) return profiles[i];
  throw NotFound("no profile for route id " + std::to_string(id.value()));
}

std::vector<const roadnet::BusRoute*> City::route_pointers() const {
  std::vector<const roadnet::BusRoute*> out;
  out.reserve(routes.size());
  for (const auto& r : routes) out.push_back(&r);
  return out;
}

std::vector<rf::AccessPoint> City::ap_snapshot(SimTime t) const {
  std::vector<rf::AccessPoint> out;
  out.reserve(aps.count());
  for (const auto& ap : aps.aps())
    if (aps.is_active(ap.id, t)) out.push_back(ap);
  return out;
}

City build_paper_city(const CityParams& params) {
  WILOC_EXPECTS(params.ap_density_per_km > 0.0);
  WILOC_EXPECTS(params.edge_length_m > 0.0);

  City city;
  city.network = std::make_unique<RoadNetwork>();
  RoadNetwork& net = *city.network;
  Rng rng(params.seed);

  const double L = params.edge_length_m;
  constexpr std::size_t kCorridorEdges = 40;  // 16 km main street

  // Main corridor ("the main street") along the x axis, with a gentle
  // procedural wobble so edges are not collinear.
  std::vector<NodeId> corridor;
  corridor.reserve(kCorridorEdges + 1);
  for (std::size_t i = 0; i <= kCorridorEdges; ++i) {
    const double x = static_cast<double>(i) * L;
    const double y = 30.0 * std::sin(static_cast<double>(i) * 0.35);
    corridor.push_back(net.add_node({x, y}, "bdwy" + std::to_string(i)));
  }
  std::vector<EdgeId> corridor_edges;  // edge k: corridor[k] -> corridor[k+1]
  corridor_edges.reserve(kCorridorEdges);
  for (std::size_t k = 0; k < kCorridorEdges; ++k) {
    corridor_edges.push_back(net.add_straight_edge(
        corridor[k], corridor[k + 1], 13.9, "bdwy_e" + std::to_string(k)));
  }

  // Branch helper: a straight street leaving `from` along direction
  // (dx, dy), `count` edges long. Returns the edges in travel order.
  const auto branch = [&](NodeId from, double dx, double dy,
                          std::size_t count, const std::string& name,
                          double speed) {
    std::vector<EdgeId> edges;
    NodeId prev = from;
    const geo::Point base = net.node(from).position;
    for (std::size_t i = 1; i <= count; ++i) {
      const NodeId next = net.add_node(
          {base.x + dx * static_cast<double>(i) * L,
           base.y + dy * static_cast<double>(i) * L},
          name + std::to_string(i));
      edges.push_back(
          net.add_straight_edge(prev, next, speed,
                                name + "_e" + std::to_string(i)));
      prev = next;
    }
    return edges;
  };
  // Reversed branch: edges *toward* `to` (an approach leg).
  const auto approach = [&](NodeId to, double dx, double dy,
                            std::size_t count, const std::string& name,
                            double speed) {
    std::vector<NodeId> nodes;
    const geo::Point base = net.node(to).position;
    for (std::size_t i = count; i >= 1; --i) {
      nodes.push_back(net.add_node(
          {base.x + dx * static_cast<double>(i) * L,
           base.y + dy * static_cast<double>(i) * L},
          name + std::to_string(i)));
    }
    nodes.push_back(to);
    std::vector<EdgeId> edges;
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
      edges.push_back(
          net.add_straight_edge(nodes[i], nodes[i + 1], speed,
                                name + "_e" + std::to_string(i)));
    }
    return edges;
  };

  const auto corridor_span = [&](std::size_t first_edge,
                                 std::size_t last_edge) {
    std::vector<EdgeId> out(corridor_edges.begin() +
                                static_cast<std::ptrdiff_t>(first_edge),
                            corridor_edges.begin() +
                                static_cast<std::ptrdiff_t>(last_edge) + 1);
    return out;
  };
  const auto concat = [](std::vector<EdgeId> a,
                         const std::vector<EdgeId>& b) {
    a.insert(a.end(), b.begin(), b.end());
    return a;
  };

  // --- Rapid Line: corridor edges 1..34 (13.6 km), 19 stops. ---
  {
    std::vector<EdgeId> edges = corridor_span(1, 34);
    const double len = route_edges_length(net, edges);
    city.routes.emplace_back(RouteId(0), "Rapid", net, edges,
                             even_stops(len, 19, "Rapid"));
    city.profiles.push_back({0.86, 12.0, 2.5, 0.12, 18.0});
  }
  // --- Route 9: corridor edges 0..35 (14.4 km) + 2 km north tail. ---
  {
    const auto tail = branch(corridor[36], 0.0, 1.0, 5, "r9n", 12.5);
    std::vector<EdgeId> edges = concat(corridor_span(0, 35), tail);
    const double len = route_edges_length(net, edges);
    city.routes.emplace_back(RouteId(1), "9", net, edges,
                             even_stops(len, 65, "9"));
    city.profiles.push_back({0.72, 19.0, 8.0, 0.45, 30.0});
  }
  // --- Route 14: 2.4 km south approach + full corridor + 2 km north. ---
  {
    const auto west = approach(corridor[0], 0.0, -1.0, 6, "r14s", 12.5);
    const auto east = branch(corridor[40], 0.0, 1.0, 5, "r14n", 12.5);
    std::vector<EdgeId> edges =
        concat(concat(west, corridor_span(0, 39)), east);
    const double len = route_edges_length(net, edges);
    city.routes.emplace_back(RouteId(2), "14", net, edges,
                             even_stops(len, 74, "14"));
    city.profiles.push_back({0.70, 20.0, 8.0, 0.48, 30.0});
  }
  // --- Route 16: 2 km south approach at x=4 km + corridor edges 10..33
  // (9.6 km) + 6.8 km north exit at x=13.6 km. ---
  {
    const auto south = approach(corridor[10], 0.0, -1.0, 5, "r16s", 12.5);
    const auto north = branch(corridor[34], 0.0, 1.0, 17, "r16n", 12.5);
    std::vector<EdgeId> edges =
        concat(concat(south, corridor_span(10, 33)), north);
    const double len = route_edges_length(net, edges);
    city.routes.emplace_back(RouteId(3), "16", net, edges,
                             even_stops(len, 91, "16"));
    city.profiles.push_back({0.74, 18.0, 8.0, 0.42, 28.0});
  }

  // APs along every edge that any route uses (dedup edges first).
  std::vector<EdgeId> used;
  for (const auto& r : city.routes)
    used.insert(used.end(), r.edges().begin(), r.edges().end());
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  Rng ap_rng = rng.fork();
  place_aps(city.aps, net, used, params.ap_density_per_km, ap_rng);

  city.rf_model = std::make_unique<rf::LogDistanceModel>(params.rf);

  // Sparse cell towers: along the corridor, alternating sides, far off
  // the road.
  Rng tower_rng = rng.fork();
  const double corridor_len = static_cast<double>(kCorridorEdges) * L;
  int side = 1;
  for (double x = params.tower_spacing_m / 2; x < corridor_len;
       x += params.tower_spacing_m) {
    city.towers.add({x + tower_rng.uniform(-120.0, 120.0),
                     side * tower_rng.uniform(220.0, 380.0)});
    side = -side;
  }

  WILOC_ENSURES(city.routes.size() == 4);
  return city;
}

CampusScenario build_campus(std::uint64_t seed) {
  CampusScenario campus;
  campus.network = std::make_unique<RoadNetwork>();
  RoadNetwork& net = *campus.network;
  Rng rng(seed);

  // A 420 m one-way campus road, two edges.
  const NodeId a = net.add_node({0, 0}, "gate");
  const NodeId b = net.add_node({220, 12}, "mid");
  const NodeId c = net.add_node({420, 0}, "hall");
  const EdgeId e1 = net.add_straight_edge(a, b, 8.3, "campus_e1");
  const EdgeId e2 = net.add_straight_edge(b, c, 8.3, "campus_e2");

  std::vector<Stop> stops = {{"gate", 0.0}, {"hall", 440.0}};
  // Total length = |ab| + |bc|; clamp the final stop to it.
  const double len = net.edge(e1).length() + net.edge(e2).length();
  stops.back().route_offset = len;
  campus.routes.emplace_back(RouteId(0), "campus", net,
                             std::vector<EdgeId>{e1, e2}, std::move(stops));

  // Eleven APs (AP1..AP11 in Table II), buildings on both sides.
  const roadnet::BusRoute& route = campus.routes.front();
  struct Placement {
    double along;
    double lateral;
  };
  const Placement placements[11] = {
      {385, 18},  {362, -22}, {40, 25},   {330, 15},  {300, -18},
      {35, -30},  {90, 20},   {140, -24}, {205, 17},  {120, -15},
      {70, 30}};
  for (const Placement& p : placements) {
    const geo::Point on_road = route.point_at(p.along);
    const geo::Vec lateral =
        net.edge(route.edges()[route.position_at(p.along).edge_index])
            .geometry()
            .tangent_at(route.position_at(p.along).edge_offset)
            .perp();
    campus.aps.add(on_road + lateral * p.lateral,
                   rng.uniform(-36.0, -30.0), rng.uniform(2.7, 3.2));
  }

  rf::LogDistanceParams rf_params;
  rf_params.shadowing_sigma_db = 3.0;  // campus: lighter clutter
  rf_params.fading_sigma_db = 3.0;
  campus.rf_model = std::make_unique<rf::LogDistanceModel>(rf_params);

  campus.probe_offsets = {120.0, 230.0, 340.0};  // locations A, B, C
  return campus;
}

}  // namespace wiloc::sim
