#include "sim/crowd.hpp"

#include "util/contracts.hpp"

namespace wiloc::sim {

std::vector<ScanReport> sense_trip(const TripRecord& trip,
                                   const roadnet::BusRoute& route,
                                   const rf::ApRegistry& registry,
                                   const rf::PropagationModel& model,
                                   const rf::Scanner& scanner, Rng& rng,
                                   CrowdParams params) {
  WILOC_EXPECTS(params.scan_period_s > 0.0);
  WILOC_EXPECTS(params.riders >= 1);
  WILOC_EXPECTS(trip.route == route.id());

  std::vector<ScanReport> reports;
  for (SimTime t = trip.start_time; t <= trip.end_time;
       t += params.scan_period_s) {
    const double offset = trip.offset_at(t);
    const geo::Point bus = route.point_at(offset);
    std::vector<rf::WifiScan> scans;
    scans.reserve(params.riders);
    for (std::size_t r = 0; r < params.riders; ++r) {
      const geo::Point phone{
          bus.x + rng.normal(0.0, params.lateral_jitter_m),
          bus.y + rng.normal(0.0, params.lateral_jitter_m)};
      rf::WifiScan scan = scanner.scan(registry, model, phone, t, rng);
      if (!scan.empty()) scans.push_back(std::move(scan));
    }
    if (scans.empty()) continue;  // radio-dead stretch: nothing reported
    reports.push_back({trip.id, trip.route, rf::merge_scans(scans)});
  }
  return reports;
}

}  // namespace wiloc::sim
