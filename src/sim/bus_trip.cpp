#include "sim/bus_trip.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace wiloc::sim {

double TripRecord::offset_at(SimTime t) const {
  WILOC_EXPECTS(!trajectory.empty());
  if (t <= trajectory.front().time) return trajectory.front().route_offset;
  if (t >= trajectory.back().time) return trajectory.back().route_offset;
  const auto it = std::lower_bound(
      trajectory.begin(), trajectory.end(), t,
      [](const TrajectorySample& s, SimTime v) { return s.time < v; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  if (hi.time == lo.time) return lo.route_offset;
  const double f = (t - lo.time) / (hi.time - lo.time);
  return lo.route_offset + f * (hi.route_offset - lo.route_offset);
}

SimTime TripRecord::arrival_at_stop(std::size_t stop_index) const {
  for (const StopTiming& st : stops)
    if (st.stop_index == stop_index) return st.arrive;
  throw NotFound("stop index " + std::to_string(stop_index) +
                 " not serviced by trip");
}

TripRecord simulate_trip(TripId trip_id, const roadnet::BusRoute& route,
                         const RouteProfile& profile,
                         const TrafficModel& traffic, SimTime start_time,
                         Rng& rng, BusTripParams params) {
  WILOC_EXPECTS(params.integration_dt_s > 0.0);
  WILOC_EXPECTS(params.sample_period_s > 0.0);
  WILOC_EXPECTS(profile.cruise_factor > 0.0 && profile.cruise_factor <= 1.0);

  TripRecord record;
  record.id = trip_id;
  record.route = route.id();
  record.start_time = start_time;

  const roadnet::RoadNetwork& network = route.network();
  const double length = route.length();

  double offset = 0.0;
  SimTime t = start_time;
  SimTime next_sample = start_time;

  std::size_t next_stop = 0;
  // Skip stops at offset 0 (the origin stop: the trip departs from it).
  while (next_stop < route.stop_count() &&
         route.stop_offset(next_stop) <= 0.0) {
    record.stops.push_back({next_stop, t, t});
    ++next_stop;
  }

  std::size_t edge_index = 0;
  record.segments.push_back({0, t, t});

  const auto record_sample = [&]() {
    record.trajectory.push_back({t, offset});
  };
  record_sample();
  next_sample = t + params.sample_period_s;

  const auto dwell_at_stop = [&]() {
    const double dwell = std::max(
        2.0, rng.normal(profile.dwell_mean_s, profile.dwell_sigma_s));
    return dwell;
  };

  // Hard bound on runaway loops: a trip can never exceed 12 hours.
  const SimTime deadline = start_time + 12.0 * 3600.0;

  while (offset < length && t < deadline) {
    const roadnet::RoutePosition pos = route.position_at(offset);
    if (pos.edge_index != edge_index) {
      // Crossed into a new edge: close the previous timing.
      record.segments.back().exit = t;
      edge_index = pos.edge_index;
      record.segments.push_back({edge_index, t, t});
    }
    const roadnet::EdgeId edge_id = route.edges()[edge_index];
    const roadnet::RoadSegment& edge = network.edge(edge_id);

    double speed = edge.speed_limit() * profile.cruise_factor /
                   traffic.slowdown(edge_id, t);
    speed = std::min(speed,
                     traffic.incident_cap(edge_id, pos.edge_offset, t));
    speed = std::max(speed, params.min_speed_mps);

    double step = speed * params.integration_dt_s;
    double dt = params.integration_dt_s;

    // Clip the step at the next stop so we service it exactly.
    if (next_stop < route.stop_count()) {
      const double stop_offset = route.stop_offset(next_stop);
      if (offset < stop_offset && offset + step >= stop_offset) {
        dt *= (stop_offset - offset) / step;
        step = stop_offset - offset;
      }
    }
    // Clip at the edge end so intersections are handled exactly.
    const double edge_end = route.edge_end_offset(edge_index);
    if (offset < edge_end && offset + step > edge_end) {
      dt *= (edge_end - offset) / step;
      step = edge_end - offset;
    }

    offset += step;
    t += dt;

    while (next_sample <= t) {
      record.trajectory.push_back({next_sample, offset});
      next_sample += params.sample_period_s;
    }

    // Service a stop we just reached.
    if (next_stop < route.stop_count() &&
        offset >= route.stop_offset(next_stop) - 1e-9) {
      const SimTime arrive = t;
      t += dwell_at_stop();
      record.stops.push_back({next_stop, arrive, t});
      ++next_stop;
      while (next_sample <= t) {
        record.trajectory.push_back({next_sample, offset});
        next_sample += params.sample_period_s;
      }
    }

    // Traffic light at an intersection (not at the route's end).
    if (offset >= edge_end - 1e-9 && offset < length - 1e-9 &&
        rng.bernoulli(profile.light_stop_probability)) {
      t += rng.exponential(profile.light_wait_mean_s);
      while (next_sample <= t) {
        record.trajectory.push_back({next_sample, offset});
        next_sample += params.sample_period_s;
      }
    }
  }

  record.segments.back().exit = t;
  record.end_time = t;
  record.trajectory.push_back({t, offset});
  WILOC_ENSURES(!record.trajectory.empty());
  return record;
}

}  // namespace wiloc::sim
