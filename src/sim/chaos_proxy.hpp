// Socket-level fault injection: an in-process TCP chaos proxy.
//
// The scan-level FaultInjector perturbs *reports*; ChaosProxy perturbs
// the *byte streams* underneath them — the failure plane that, per
// server-side WiFi-localization deployment reports, actually dominates
// outages. It sits between an HttpClient/HttpLoadDriver and a live
// HttpServer on loopback and deterministically (every decision drawn
// from a seeded wiloc::Rng) degrades each proxied connection:
//
//   refuse         accept, then immediately close (connect-level fault)
//   delay          a relayed chunk sleeps before forwarding
//   split          a relayed chunk is forwarded one byte at a time
//   corrupt        one byte of a relayed chunk is flipped
//   truncate       the client->server stream is cut mid-request (the
//                  server sees half a request and must 408 it)
//   kill_response  the connection dies mid server->client response (the
//                  client sees a torn body and must surface an Error)
//
// Per-connection faults (refuse/truncate/kill_response) are decided at
// accept time from the connection's forked rng, per-chunk faults
// (delay/split/corrupt) per relayed chunk, so a run with the same seed
// injects the same faults at the same byte offsets. Counters record
// exactly what was done — chaos tests reconcile them against the
// client-side errors and the server's http.* metrics — and optionally
// publish as net.chaos.* through a util/obs registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/obs.hpp"
#include "util/rng.hpp"

namespace wiloc::sim {

/// Per-fault-class probabilities. Connection-level classes (refuse,
/// truncate, kill_response) are evaluated once per connection; chunk
/// classes (delay, split, corrupt) per relayed chunk.
struct ChaosProfile {
  double refuse = 0.0;
  double delay = 0.0;
  double split = 0.0;
  double corrupt = 0.0;
  double truncate = 0.0;
  double kill_response = 0.0;
  double delay_ms_max = 20.0;  ///< delayed chunks sleep U(0, this) ms

  /// Every fault class at probability p.
  static ChaosProfile uniform(double p);
};

/// What the proxy actually did.
struct ChaosCounters {
  std::uint64_t connections = 0;
  std::uint64_t refused = 0;
  std::uint64_t truncated = 0;       ///< request streams cut mid-flight
  std::uint64_t killed_responses = 0;
  std::uint64_t delayed_chunks = 0;
  std::uint64_t split_chunks = 0;
  std::uint64_t corrupted_chunks = 0;
  std::uint64_t bytes_to_server = 0;
  std::uint64_t bytes_to_client = 0;

  /// Connections that experienced any connection-level fault.
  std::uint64_t faulted_connections() const {
    return refused + truncated + killed_responses;
  }
};

class ChaosProxy {
 public:
  /// Faults flow toward `upstream_port` on 127.0.0.1 (the server under
  /// test). Metrics land in `registry` as net.chaos.* when non-null.
  ChaosProxy(std::uint16_t upstream_port, ChaosProfile profile,
             std::uint64_t seed = 1, obs::Registry* registry = nullptr);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds an ephemeral loopback port and starts the accept thread.
  /// Throws wiloc::Error when the socket cannot be bound.
  void start();
  /// Closes the listener and every relay; joins all threads.
  /// Idempotent; never throws.
  void stop() noexcept;

  /// The port clients should connect to (valid after start()).
  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Snapshot of the fault ledger (thread-safe).
  ChaosCounters counters() const;

 private:
  struct ConnPlan {
    bool refuse = false;
    bool truncate = false;
    bool kill_response = false;
    Rng rng;  ///< per-chunk decisions

    explicit ConnPlan(Rng r) : rng(r) {}
  };

  void accept_loop();
  void relay(int client_fd, ConnPlan plan);
  /// Forwards one chunk with per-chunk faults applied. Returns false
  /// when the destination died.
  bool forward(int dst_fd, char* data, std::size_t len, ConnPlan& plan,
               bool to_server);

  std::uint16_t upstream_port_;
  ChaosProfile profile_;
  Rng rng_;  ///< accept-thread only: forks one child per connection
  obs::Registry* registry_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread acceptor_;
  std::mutex relays_mu_;
  std::vector<std::thread> relays_;

  mutable std::mutex counters_mu_;
  ChaosCounters counters_;

  // net.chaos.* metric handles (null without a registry).
  obs::Counter* m_connections_ = nullptr;
  obs::Counter* m_refused_ = nullptr;
  obs::Counter* m_truncated_ = nullptr;
  obs::Counter* m_killed_ = nullptr;
  obs::Counter* m_delayed_ = nullptr;
  obs::Counter* m_split_ = nullptr;
  obs::Counter* m_corrupted_ = nullptr;
  obs::Counter* m_bytes_to_server_ = nullptr;
  obs::Counter* m_bytes_to_client_ = nullptr;
};

}  // namespace wiloc::sim
