#include "sim/fleet.hpp"

#include "util/contracts.hpp"

namespace wiloc::sim {

FleetPlan default_fleet_plan(const City& city) {
  FleetPlan plan;
  plan.per_route.reserve(city.routes.size());
  for (const auto& route : city.routes) {
    ServicePlan sp{hms(6, 30), hms(22, 0), 720.0};
    if (route.name() == "Rapid") sp.headway_s = 480.0;
    if (route.name() == "16") sp.headway_s = 900.0;
    plan.per_route.push_back(sp);
  }
  return plan;
}

std::vector<TripRecord> simulate_service_day(
    const City& city, const TrafficModel& traffic, const FleetPlan& plan,
    int day, Rng& rng, std::uint32_t* next_trip_id,
    bool keep_trajectories) {
  WILOC_EXPECTS(plan.per_route.size() == city.routes.size());
  WILOC_EXPECTS(next_trip_id != nullptr);

  std::vector<TripRecord> trips;
  for (std::size_t r = 0; r < city.routes.size(); ++r) {
    const ServicePlan& sp = plan.per_route[r];
    WILOC_EXPECTS(sp.headway_s > 0.0);
    WILOC_EXPECTS(sp.first_departure_tod <= sp.last_departure_tod);
    for (double tod = sp.first_departure_tod; tod <= sp.last_departure_tod;
         tod += sp.headway_s) {
      const SimTime depart = at_day_time(day, tod);
      TripRecord trip =
          simulate_trip(TripId((*next_trip_id)++), city.routes[r],
                        city.profiles[r], traffic, depart, rng);
      if (!keep_trajectories) {
        trip.trajectory.clear();
        trip.trajectory.shrink_to_fit();
      }
      trips.push_back(std::move(trip));
    }
  }
  return trips;
}

std::vector<TripRecord> simulate_service_days(
    const City& city, const TrafficModel& traffic, const FleetPlan& plan,
    int first_day, int day_count, Rng& rng, bool keep_trajectories) {
  WILOC_EXPECTS(day_count >= 0);
  std::vector<TripRecord> all;
  std::uint32_t next_id = 0;
  for (int d = 0; d < day_count; ++d) {
    auto day_trips =
        simulate_service_day(city, traffic, plan, first_day + d, rng,
                             &next_id, keep_trajectories);
    for (auto& trip : day_trips) all.push_back(std::move(trip));
  }
  return all;
}

}  // namespace wiloc::sim
