// Scenario construction.
//
// The paper evaluates on four TransLink routes (the Rapid Line and routes
// 9, 14, 16) sharing a main-street corridor in Metro-Vancouver (Fig. 7,
// Table I), with geo-tagged APs dense along the roads, plus a campus
// road experiment (Table II, Fig. 10). Neither the real corridor nor the
// AP geo-tags are available, so CityBuilder synthesizes a corridor with
// the same *structure*: four routes with Table-I-like lengths, stop
// counts and overlap pattern, storefront APs on both road sides, and a
// sparse cell-tower grid for the Cell-ID baseline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rf/cellular.hpp"
#include "rf/propagation.hpp"
#include "rf/registry.hpp"
#include "roadnet/overlap.hpp"
#include "roadnet/route.hpp"
#include "sim/bus_trip.hpp"

namespace wiloc::sim {

/// A fully built scenario. The network and RF model are heap-allocated
/// so routes/pointers stay valid when the City moves.
struct City {
  std::unique_ptr<roadnet::RoadNetwork> network;
  std::vector<roadnet::BusRoute> routes;
  std::vector<RouteProfile> profiles;  ///< aligned with routes
  rf::ApRegistry aps;
  std::unique_ptr<rf::LogDistanceModel> rf_model;
  rf::TowerRegistry towers;

  /// Route lookup by display name ("Rapid", "9", "14", "16").
  const roadnet::BusRoute& route_by_name(const std::string& name) const;

  /// Driving profile of a route.
  const RouteProfile& profile_of(roadnet::RouteId id) const;

  /// All routes as overlap-index input.
  std::vector<const roadnet::BusRoute*> route_pointers() const;

  /// The active APs at time 0 as a value vector (SVD construction input).
  std::vector<rf::AccessPoint> ap_snapshot(SimTime t = 0.0) const;
};

struct CityParams {
  std::uint64_t seed = 2016;
  double ap_density_per_km = 24.0;   ///< APs per km of road (Fig. 9a knob)
  double edge_length_m = 400.0;      ///< intersection spacing
  double tower_spacing_m = 1400.0;   ///< cell-tower spacing (sparse)
  rf::LogDistanceParams rf;          ///< propagation parameters
};

/// Builds the four-route corridor city. Route order: Rapid, 9, 14, 16.
City build_paper_city(const CityParams& params = {});

/// The campus experiment of Table II / Fig. 10: a one-way road with 11
/// numbered APs and three probe locations A, B, C.
struct CampusScenario {
  std::unique_ptr<roadnet::RoadNetwork> network;
  std::vector<roadnet::BusRoute> routes;  ///< exactly one route
  rf::ApRegistry aps;
  std::unique_ptr<rf::LogDistanceModel> rf_model;
  std::vector<double> probe_offsets;  ///< route offsets of A, B, C

  const roadnet::BusRoute& route() const { return routes.front(); }
};

CampusScenario build_campus(std::uint64_t seed = 7);

}  // namespace wiloc::sim
