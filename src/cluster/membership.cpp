#include "cluster/membership.hpp"

#include <cstdlib>

#include "util/contracts.hpp"

namespace wiloc::cluster {

std::vector<NodeInfo> NodeInfo::parse_list(const std::string& spec) {
  std::vector<NodeInfo> nodes;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    const std::size_t colon = item.rfind(':');
    if (eq == std::string::npos || colon == std::string::npos || colon < eq ||
        eq == 0 || colon + 1 >= item.size())
      throw InvalidArgument("node spec must be id=host:port, got \"" + item +
                            "\"");
    NodeInfo node;
    node.id = item.substr(0, eq);
    node.host = item.substr(eq + 1, colon - eq - 1);
    const int port = std::atoi(item.c_str() + colon + 1);
    if (node.host.empty() || port <= 0 || port > 65535)
      throw InvalidArgument("node spec must be id=host:port, got \"" + item +
                            "\"");
    node.port = static_cast<std::uint16_t>(port);
    for (const NodeInfo& seen : nodes)
      if (seen.id == node.id)
        throw InvalidArgument("duplicate node id \"" + node.id + "\"");
    nodes.push_back(std::move(node));
  }
  return nodes;
}

Membership::Membership(std::vector<NodeInfo> nodes, int failure_threshold)
    : nodes_(std::move(nodes)), failure_threshold_(failure_threshold) {
  WILOC_EXPECTS(!nodes_.empty());
  WILOC_EXPECTS(failure_threshold_ >= 1);
  consecutive_failures_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    consecutive_failures_.push_back(std::make_unique<std::atomic<int>>(0));
}

void Membership::report_success(std::size_t i) {
  consecutive_failures_[i]->store(0, std::memory_order_release);
}

void Membership::report_failure(std::size_t i) {
  consecutive_failures_[i]->fetch_add(1, std::memory_order_acq_rel);
}

bool Membership::healthy(std::size_t i) const {
  return consecutive_failures_[i]->load(std::memory_order_acquire) <
         failure_threshold_;
}

std::size_t Membership::healthy_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (healthy(i)) ++n;
  return n;
}

int Membership::failures(std::size_t i) const {
  return consecutive_failures_[i]->load(std::memory_order_acquire);
}

}  // namespace wiloc::cluster
