// Cluster membership: the static node table plus dynamic health.
//
// WiLocator's cluster mode is deliberately simple — a fixed node list
// given at startup (no gossip, no elections), with liveness decided by
// whoever probes: the router's health-probe thread and the proxy path
// both report per-node successes/failures here, and a node is "down"
// after `failure_threshold` consecutive failures (one success resets
// it). The hash ring ranks nodes; Membership says which of them are
// currently worth sending to.
//
// Thread-safe: probe threads and the router's event-loop thread report
// concurrently (per-node atomics; the node table itself is immutable
// after construction).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace wiloc::cluster {

/// One serving node as the router addresses it.
struct NodeInfo {
  std::string id;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  /// Parses "id=host:port,id=host:port,..." (the --nodes / --peers
  /// flag format). Throws wiloc::InvalidArgument on malformed specs.
  static std::vector<NodeInfo> parse_list(const std::string& spec);
};

class Membership {
 public:
  /// `failure_threshold` consecutive failures mark a node down.
  explicit Membership(std::vector<NodeInfo> nodes, int failure_threshold = 2);

  std::size_t size() const { return nodes_.size(); }
  const NodeInfo& node(std::size_t i) const { return nodes_[i]; }

  void report_success(std::size_t i);
  void report_failure(std::size_t i);

  /// Below the consecutive-failure threshold (a never-probed node is
  /// healthy — optimistic start keeps a cold cluster routable).
  bool healthy(std::size_t i) const;
  std::size_t healthy_count() const;

  /// Consecutive failures currently recorded for the node.
  int failures(std::size_t i) const;

 private:
  std::vector<NodeInfo> nodes_;
  int failure_threshold_;
  /// unique_ptr: atomics are neither copyable nor movable, and the
  /// vector is sized once in the constructor.
  std::vector<std::unique_ptr<std::atomic<int>>> consecutive_failures_;
};

}  // namespace wiloc::cluster
