#include "cluster/replication.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <span>

#include "util/contracts.hpp"

namespace wiloc::cluster {

namespace {

std::uint64_t header_u64(const net::ClientResponse& response,
                         const char* name) {
  const auto it = response.headers.find(name);
  if (it == response.headers.end()) return 0;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

}  // namespace

ReplicationTailer::ReplicationTailer(net::WiLocatorService& local,
                                     std::vector<NodeInfo> peers,
                                     ReplicationOptions options,
                                     obs::Registry* registry)
    : local_(local), peers_(std::move(peers)), options_(options) {
  progress_.resize(peers_.size());
  if (registry != nullptr) {
    m_polls_ = &registry->counter("repl.polls");
    m_errors_ = &registry->counter("repl.errors");
    m_records_ = &registry->counter("repl.records_received");
    m_applied_ = &registry->counter("repl.records_applied");
    m_gaps_ = &registry->counter("repl.gaps");
    m_lag_records_ = &registry->gauge("repl.lag_records");
  }
}

ReplicationTailer::~ReplicationTailer() { stop(); }

void ReplicationTailer::start() {
  WILOC_EXPECTS(!started_);
  started_ = true;
  {
    // Seconds-behind is measured from "last caught up"; before the
    // first successful poll that reference point is start time.
    const std::lock_guard<std::mutex> lock(progress_mu_);
    for (PeerProgress& p : progress_) p.caught_up_wall_s = wall_s();
  }
  local_.set_replication_lag_provider([this] { return lag(); });
  thread_ = std::thread([this] { loop(); });
}

void ReplicationTailer::stop() noexcept {
  if (!started_) return;
  started_ = false;
  stopping_.store(true, std::memory_order_release);
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Leave the lag provider wired: the last-known lag stays visible in
  // /readyz (lag() is safe after the thread is gone).
}

double ReplicationTailer::wall_s() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ReplicationTailer::loop() {
  clients_.reserve(peers_.size());
  for (const NodeInfo& peer : peers_)
    clients_.push_back(std::make_unique<net::HttpClient>(
        peer.host, peer.port, options_.client));

  const auto pause =
      std::chrono::duration<double>(std::max(options_.poll_interval_s, 1e-3));
  while (!stopping_.load(std::memory_order_acquire)) {
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      if (stopping_.load(std::memory_order_acquire)) return;
      // Drain a peer with a backlog page by page before moving on.
      while (poll_peer(i) && !stopping_.load(std::memory_order_acquire)) {
      }
    }
    if (m_lag_records_ != nullptr) {
      std::uint64_t worst = 0;
      for (const net::PeerLag& lag : this->lag())
        worst = std::max(worst, lag.records_behind);
      m_lag_records_->set(static_cast<double>(worst));
    }
    std::unique_lock<std::mutex> lk(cv_mu_);
    cv_.wait_for(lk, pause, [this] {
      return stopping_.load(std::memory_order_acquire);
    });
  }
}

bool ReplicationTailer::poll_peer(std::size_t i) {
  std::uint64_t after = 0;
  {
    const std::lock_guard<std::mutex> lock(progress_mu_);
    after = progress_[i].watermark;
  }
  if (m_polls_ != nullptr) m_polls_->inc();

  net::ClientResponse response;
  try {
    response = clients_[i]->get("/v1/replication/segments?after=" +
                                std::to_string(after) + "&max_bytes=" +
                                std::to_string(options_.max_bytes));
  } catch (const Error&) {
    if (m_errors_ != nullptr) m_errors_->inc();
    const std::lock_guard<std::mutex> lock(progress_mu_);
    progress_[i].reachable = false;
    progress_[i].ever_polled = true;
    return false;
  }
  if (response.status != 200) {
    // 404 = peer runs without persistence (nothing to tail); other
    // statuses are transient. Either way the peer *process* answered.
    if (m_errors_ != nullptr && response.status != 404) m_errors_->inc();
    const std::lock_guard<std::mutex> lock(progress_mu_);
    progress_[i].reachable = true;
    progress_[i].ever_polled = true;
    progress_[i].caught_up_wall_s = wall_s();
    return false;
  }

  const std::uint64_t first_seq = header_u64(response, "X-First-Seq");
  const std::uint64_t head_seq = header_u64(response, "X-Head-Seq");
  const std::uint64_t compacted = header_u64(response, "X-Compacted-Through");
  const bool truncated = header_u64(response, "X-Truncated") != 0;

  // Sequence numbers are contiguous per node: a first frame beyond
  // watermark+1 (or an empty page below a higher compaction point)
  // means the peer folded the missing records into a snapshot before we
  // read them. Count the gap and resume from where data exists again.
  std::uint64_t gap_from = after;
  if (first_seq > after + 1 && compacted > after)
    gap_from = std::min(first_seq - 1, compacted);
  else if (response.body.empty() && compacted > after)
    gap_from = compacted;
  if (gap_from > after) {
    gaps_.fetch_add(gap_from - after, std::memory_order_relaxed);
    if (m_gaps_ != nullptr) m_gaps_->inc(gap_from - after);
  }

  net::WiLocatorService::ReplicationApply applied{};
  if (!response.body.empty()) {
    const auto* bytes =
        reinterpret_cast<const std::byte*>(response.body.data());
    applied = local_.apply_replication_frames(
        std::span<const std::byte>(bytes, response.body.size()));
    if (m_records_ != nullptr) m_records_->inc(applied.records);
    if (m_applied_ != nullptr) m_applied_->inc(applied.applied);
    applied_.fetch_add(applied.applied, std::memory_order_relaxed);
  }

  {
    const std::lock_guard<std::mutex> lock(progress_mu_);
    PeerProgress& p = progress_[i];
    p.reachable = true;
    p.ever_polled = true;
    p.watermark = std::max({p.watermark, gap_from, applied.last_seq});
    p.peer_head_seq = std::max(head_seq, p.watermark);
    if (!truncated && p.watermark >= p.peer_head_seq)
      p.caught_up_wall_s = wall_s();
  }
  return truncated;
}

std::vector<net::PeerLag> ReplicationTailer::lag() const {
  std::vector<net::PeerLag> out;
  out.reserve(peers_.size());
  const double now = wall_s();
  const std::lock_guard<std::mutex> lock(progress_mu_);
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    const PeerProgress& p = progress_[i];
    net::PeerLag lag;
    lag.peer = peers_[i].id;
    lag.records_behind =
        p.peer_head_seq > p.watermark ? p.peer_head_seq - p.watermark : 0;
    if (!p.ever_polled) {
      lag.seconds_behind = 0.0;  // no poll yet: nothing meaningful to report
    } else if (lag.records_behind == 0 && p.reachable) {
      lag.seconds_behind = 0.0;
    } else {
      lag.seconds_behind = std::max(0.0, now - p.caught_up_wall_s);
    }
    lag.reachable = p.reachable;
    out.push_back(std::move(lag));
  }
  return out;
}

bool ReplicationTailer::caught_up() const {
  const std::lock_guard<std::mutex> lock(progress_mu_);
  for (const PeerProgress& p : progress_) {
    if (!p.ever_polled) return false;
    if (p.reachable && p.watermark < p.peer_head_seq) return false;
  }
  return true;
}

}  // namespace wiloc::cluster
