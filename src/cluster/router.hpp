// ClusterRouter: the thin consistent-hash trip->node HTTP front door.
//
// Clients talk to the router exactly as they would to a single
// wilocator_serve; the router owns placement and failover:
//
//   - trip-scoped requests (scans, position, trip arrival, trip
//     registration) go to the trip's rendezvous-hash owner, falling
//     over to the next node in that trip's own ranking when the owner
//     is unhealthy or the forward fails (retry-on-next-replica);
//   - POST /v1/scans batches are split by owner node, forwarded
//     per-node, and the per-node acks merged — the router acks a scan
//     only after some node did (zero acknowledged-and-lost scans);
//   - route-scoped arrival queries scatter to every healthy node (a
//     route's trips may be sharded across nodes) and return the
//     earliest predicted arrival; /v1/traffic-map goes to the first
//     healthy node in the query's ranking;
//   - trip registrations are cached (trip -> route) so the router can
//     lazily re-register a trip on its failover target before sending
//     scans there — a 409 "trip already active" counts as success,
//     which is what makes re-registration idempotent.
//
// Health: a background probe thread GETs every node's /healthz each
// probe interval; `probe_failures` consecutive failures mark the node
// down (proxy-path failures count too, so a dead node is usually
// detected by the very request that hit it). A downed node's trips
// fail over to the ring's next replica, which serves from its
// replicated state — degraded until the replication tailer has caught
// up, converged after.
//
// Deliberately thin: the proxy is a blocking HttpClient call on the
// serving thread (one upstream round-trip per request, no pipelining) —
// at WiLocator's fleet sizes the upstream handler, not the router hop,
// is the budget. The handler is thread-safe so the router can run the
// HTTP front end with `--http-loops N` (SO_REUSEPORT multi-loop,
// DESIGN.md §15): upstream connections live in per-node checkout pools,
// the trip->route placement cache sits behind a mutex held only around
// map operations, and Membership/ack counters were already atomic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/membership.hpp"
#include "cluster/ring.hpp"
#include "net/http_client.hpp"
#include "net/http_server.hpp"
#include "util/obs.hpp"

namespace wiloc::cluster {

struct RouterOptions {
  net::HttpServerOptions http;
  double probe_interval_s = 0.25;
  /// Consecutive failures (probe or proxy) that mark a node down.
  int probe_failures = 2;
  net::HttpClientOptions client;  ///< upstream timeouts (proxy + probes)
  /// Seed shared by every router over the same node list.
  std::uint64_t ring_seed = 0x77696c6f63ULL;
};

class ClusterRouter {
 public:
  explicit ClusterRouter(std::vector<NodeInfo> nodes,
                         RouterOptions options = {});
  ~ClusterRouter();

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  /// Binds the HTTP server and starts the probe thread.
  void start();
  /// Stops probing and serving. Idempotent; never throws.
  void stop() noexcept;

  std::uint16_t port() const {
    return http_ != nullptr ? http_->port() : 0;
  }
  bool running() const { return http_ != nullptr && http_->running(); }

  /// Routes one request (also the in-process test entry point).
  /// Thread-safe: callable from every HTTP loop concurrently.
  net::HttpResponse handle(const net::HttpRequest& request);

  const Membership& membership() const { return membership_; }
  const HashRing& ring() const { return ring_; }
  obs::Registry& metrics_registry() { return registry_; }

  /// Scans acknowledged (200 to the client) per node index — the
  /// ledger chaos tests reconcile against node-side service.scans_posted.
  std::vector<std::uint64_t> acked_scans_by_node() const;

 private:
  net::HttpResponse handle_scans(const net::HttpRequest& request);
  net::HttpResponse handle_trips(const net::HttpRequest& request);
  net::HttpResponse handle_trip_read(const net::HttpRequest& request);
  net::HttpResponse handle_route_arrival(const net::HttpRequest& request,
                                         std::uint64_t route);
  net::HttpResponse handle_any_node(const net::HttpRequest& request);
  net::HttpResponse handle_readyz();
  net::HttpResponse handle_metrics(const net::HttpRequest& request);

  /// Forwards `request` to the first node of `order` that is healthy
  /// and answers; transport failures mark the node and move on. 503/429
  /// answers also try the next replica (another node may have capacity).
  /// Exhausting the ladder yields 503 + Retry-After.
  net::HttpResponse forward_ladder(const std::vector<std::size_t>& order,
                                   const net::HttpRequest& request,
                                   bool idempotent,
                                   std::uint64_t trip_key,
                                   bool has_trip_key,
                                   std::size_t* served_by = nullptr);

  /// One upstream round-trip (GET when `body` is empty, POST
  /// otherwise). Throws wiloc::Error on transport failure.
  net::ClientResponse forward_to(std::size_t node, const std::string& target,
                                 const std::optional<std::string>& body,
                                 bool idempotent);

  /// Ensures `trip` is registered on `node` (lazy failover
  /// re-registration; 409 counts as registered). Returns false when the
  /// node could not be reached or refused.
  bool ensure_registered(std::size_t node, std::uint64_t trip);

  void probe_loop();
  /// Pops an idle upstream client for `node` (or connects a fresh one).
  /// Pair with checkin_client so the connection is reused; dropping the
  /// pointer instead just closes the connection.
  std::unique_ptr<net::HttpClient> checkout_client(std::size_t node);
  void checkin_client(std::size_t node,
                      std::unique_ptr<net::HttpClient> client);

  std::vector<NodeInfo> nodes_;
  RouterOptions options_;
  Membership membership_;
  HashRing ring_;
  obs::Registry registry_;
  std::unique_ptr<net::HttpServer> http_;

  /// Per-node pool of idle upstream connections. An HttpClient owns one
  /// connection and is not shareable, so concurrent loops check clients
  /// out for the duration of a round trip and return them after.
  struct NodePool {
    std::mutex mu;
    std::vector<std::unique_ptr<net::HttpClient>> idle;
  };
  std::vector<std::unique_ptr<NodePool>> client_pools_;

  /// Guards the placement cache below; held only around map lookups and
  /// mutations, never across an upstream round trip.
  mutable std::mutex routes_mu_;
  /// trip -> route learned from registrations.
  std::unordered_map<std::uint64_t, std::uint64_t> trip_routes_;
  /// Nodes each trip is known registered on.
  std::unordered_map<std::uint64_t, std::unordered_set<std::size_t>>
      trip_registered_;

  /// Scans acked to clients, attributed to the node that acked them.
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> acked_scans_;

  std::thread prober_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  // router.* metric handles.
  obs::Counter* m_proxied_ = nullptr;
  obs::Counter* m_failovers_ = nullptr;
  obs::Counter* m_upstream_errors_ = nullptr;
  obs::Counter* m_no_replica_ = nullptr;
  obs::Counter* m_probe_failures_ = nullptr;
  obs::Counter* m_reregistrations_ = nullptr;
  obs::Gauge* m_healthy_nodes_ = nullptr;
};

}  // namespace wiloc::cluster
