#include "cluster/ring.hpp"

#include <algorithm>
#include <numeric>

#include "util/contracts.hpp"
#include "util/hashing.hpp"

namespace wiloc::cluster {

HashRing::HashRing(std::size_t nodes, std::uint64_t seed)
    : nodes_(nodes), seed_(seed) {
  WILOC_EXPECTS(nodes_ >= 1);
}

std::uint64_t HashRing::weight(std::uint64_t key, std::size_t node) const {
  return hash_coords(seed_, key, static_cast<std::uint64_t>(node));
}

std::vector<std::size_t> HashRing::ranked(std::uint64_t key) const {
  std::vector<std::size_t> order(nodes_);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              const std::uint64_t wa = weight(key, a);
              const std::uint64_t wb = weight(key, b);
              if (wa != wb) return wa > wb;
              return a < b;  // total order even on (improbable) ties
            });
  return order;
}

std::size_t HashRing::owner(std::uint64_t key) const {
  std::size_t best = 0;
  std::uint64_t best_weight = weight(key, 0);
  for (std::size_t i = 1; i < nodes_; ++i) {
    const std::uint64_t w = weight(key, i);
    if (w > best_weight) {
      best = i;
      best_weight = w;
    }
  }
  return best;
}

}  // namespace wiloc::cluster
