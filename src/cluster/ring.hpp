// Rendezvous (highest-random-weight) hashing: trip -> node placement.
//
// Every router (and every test) computes the same ranking from nothing
// but the node count: for key k, node i scores hash(seed, k, i) and the
// nodes sort by score. The top-ranked healthy node owns the key; when
// it dies, ownership falls to the next node *in that key's own ranking*
// — so only the dead node's keys move (minimal disruption, the property
// consistent hashing exists for) and the failover target is
// deterministic without any coordination.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wiloc::cluster {

class HashRing {
 public:
  /// `nodes` is the membership size; indexes returned by ranked()/
  /// owner() are positions in that table. Every participant must use
  /// the same seed (the default is fine — it only decorrelates keys).
  explicit HashRing(std::size_t nodes, std::uint64_t seed = 0x77696c6f63ULL);

  std::size_t size() const { return nodes_; }

  /// All node indexes, best placement first, for this key.
  std::vector<std::size_t> ranked(std::uint64_t key) const;

  /// ranked(key)[0].
  std::size_t owner(std::uint64_t key) const;

 private:
  std::uint64_t weight(std::uint64_t key, std::size_t node) const;

  std::size_t nodes_;
  std::uint64_t seed_;
};

}  // namespace wiloc::cluster
