// Journal-tailing replication: pull peers' learned state into this node.
//
// The paper's Eq. 3-5 prediction chain corrects a segment's historical
// mean with *recent* traversals of that segment by buses of any route —
// so in a trip-sharded cluster, the recents a peer node learns on an
// overlapped segment must reach every node that predicts over it.
// ReplicationTailer is the pull side: one background thread round-robins
// the peer list, GETs each peer's /v1/replication/segments page after
// its local watermark, and applies the returned journal frames through
// the local service's idempotent apply path (ObservationKey dedup for
// history, exact-duplicate rejection for recents). Idempotence is the
// whole correctness story: watermarks live in memory only, a restarted
// tailer re-tails from zero, overlapped pages double-deliver — and the
// stores still converge.
//
// Gaps: a node's sequence numbers are contiguous, so first_seq jumping
// past the watermark means the peer compacted those records into a
// snapshot before we read them (X-Compacted-Through confirms it). The
// tailer counts the gap (repl.gaps) and resumes from the compaction
// point — bounded staleness, empty in steady state because peers poll
// orders of magnitude faster than checkpoints compact.
//
// A dead peer is not fatal: the poll fails, the peer is reported
// unreachable in lag() (surfaced through /readyz), and polling simply
// continues — when the peer restarts and recovers, its journal sequence
// resumes past the snapshot watermark and tailing picks up where it
// left off.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/membership.hpp"
#include "net/http_client.hpp"
#include "net/service.hpp"
#include "util/obs.hpp"

namespace wiloc::cluster {

struct ReplicationOptions {
  /// Wall-clock pause between full passes over the peer list (a
  /// truncated page re-polls the same peer immediately).
  double poll_interval_s = 0.05;
  /// Page size requested per poll (server clamps to its own cap).
  std::size_t max_bytes = 1u << 20;
  net::HttpClientOptions client;  ///< timeouts for the tail GETs
};

class ReplicationTailer {
 public:
  /// Tails `peers` into `local`. The service must outlive the tailer;
  /// metrics land in `registry` as repl.* when non-null.
  ReplicationTailer(net::WiLocatorService& local, std::vector<NodeInfo> peers,
                    ReplicationOptions options = {},
                    obs::Registry* registry = nullptr);
  ~ReplicationTailer();

  ReplicationTailer(const ReplicationTailer&) = delete;
  ReplicationTailer& operator=(const ReplicationTailer&) = delete;

  /// Starts the tailing thread and wires the local /readyz lag report.
  void start();
  /// Signals and joins the thread. Idempotent; never throws.
  void stop() noexcept;

  /// Per-peer replication progress (what /readyz publishes).
  std::vector<net::PeerLag> lag() const;

  /// Records applied locally (new here) since start.
  std::uint64_t records_applied() const {
    return applied_.load(std::memory_order_relaxed);
  }
  /// Sequence gaps skipped because the peer compacted first.
  std::uint64_t gaps() const { return gaps_.load(std::memory_order_relaxed); }

  /// True when every reachable peer was caught up at its last poll.
  bool caught_up() const;

 private:
  struct PeerProgress {
    std::uint64_t watermark = 0;      ///< highest seq applied from the peer
    std::uint64_t peer_head_seq = 0;  ///< peer's last_seq at the last poll
    double caught_up_wall_s = 0.0;    ///< when records_behind last hit 0
    bool reachable = false;
    bool ever_polled = false;
  };

  void loop();
  /// One tail poll against peer i. Returns true when the page was
  /// truncated (more data ready — poll again without sleeping).
  bool poll_peer(std::size_t i);
  double wall_s() const;

  net::WiLocatorService& local_;
  std::vector<NodeInfo> peers_;
  ReplicationOptions options_;

  /// Tailer-thread only (constructed lazily there).
  std::vector<std::unique_ptr<net::HttpClient>> clients_;

  mutable std::mutex progress_mu_;
  std::vector<PeerProgress> progress_;

  std::thread thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::mutex cv_mu_;
  std::condition_variable cv_;

  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> gaps_{0};

  // repl.* metric handles (null without a registry).
  obs::Counter* m_polls_ = nullptr;
  obs::Counter* m_errors_ = nullptr;
  obs::Counter* m_records_ = nullptr;
  obs::Counter* m_applied_ = nullptr;
  obs::Counter* m_gaps_ = nullptr;
  obs::Gauge* m_lag_records_ = nullptr;
};

}  // namespace wiloc::cluster
