#include "cluster/router.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <sstream>
#include <utility>

#include "net/json.hpp"
#include "net/load_driver.hpp"
#include "util/contracts.hpp"

namespace wiloc::cluster {

namespace {

net::HttpResponse error_json(int status, std::string_view message) {
  std::ostringstream out;
  out << "{\"error\":" << net::json_quote(message) << "}";
  return net::HttpResponse::json(status, out.str());
}

net::HttpResponse no_replica_503(double retry_after_s) {
  net::HttpResponse r =
      error_json(503, "no replica available for this request");
  r.headers["Retry-After"] =
      std::to_string(static_cast<long>(std::ceil(retry_after_s)));
  return r;
}

/// Upstream headers the router must NOT relay: serialize() re-derives
/// framing from the proxied body and our own keep-alive decision.
bool hop_by_hop(const std::string& name) {
  return name == "Content-Length" || name == "Connection" ||
         name == "Keep-Alive" || name == "Transfer-Encoding";
}

net::HttpResponse relay(const net::ClientResponse& upstream) {
  net::HttpResponse r;
  r.status = upstream.status;
  r.body = upstream.body;
  for (const auto& [name, value] : upstream.headers)
    if (!hop_by_hop(name)) r.headers[name] = value;
  return r;
}

}  // namespace

ClusterRouter::ClusterRouter(std::vector<NodeInfo> nodes,
                             RouterOptions options)
    : nodes_(std::move(nodes)),
      options_(options),
      membership_(nodes_, options.probe_failures),
      ring_(nodes_.size(), options.ring_seed) {
  WILOC_EXPECTS(!nodes_.empty());
  client_pools_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    client_pools_.push_back(std::make_unique<NodePool>());
  acked_scans_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    acked_scans_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  m_proxied_ = &registry_.counter("router.proxied");
  m_failovers_ = &registry_.counter("router.failovers");
  m_upstream_errors_ = &registry_.counter("router.upstream_errors");
  m_no_replica_ = &registry_.counter("router.no_replica_503");
  m_probe_failures_ = &registry_.counter("router.probe_failures");
  m_reregistrations_ = &registry_.counter("router.reregistrations");
  m_healthy_nodes_ = &registry_.gauge("router.healthy_nodes");
  m_healthy_nodes_->set(static_cast<double>(nodes_.size()));
}

ClusterRouter::~ClusterRouter() { stop(); }

void ClusterRouter::start() {
  WILOC_EXPECTS(!started_);
  started_ = true;
  net::HttpServerOptions http = options_.http;
  if (http.registry == nullptr) http.registry = &registry_;
  http_ = std::make_unique<net::HttpServer>(
      [this](const net::HttpRequest& request) { return handle(request); },
      http);
  http_->start();
  prober_ = std::thread([this] { probe_loop(); });
}

void ClusterRouter::stop() noexcept {
  if (!started_) return;
  started_ = false;
  stopping_.store(true, std::memory_order_release);
  if (prober_.joinable()) prober_.join();
  if (http_ != nullptr) http_->stop();
}

std::vector<std::uint64_t> ClusterRouter::acked_scans_by_node() const {
  std::vector<std::uint64_t> out;
  out.reserve(acked_scans_.size());
  for (const auto& a : acked_scans_)
    out.push_back(a->load(std::memory_order_relaxed));
  return out;
}

net::HttpResponse ClusterRouter::handle(const net::HttpRequest& request) {
  try {
    if (request.path == "/healthz")
      return net::HttpResponse::text(200, "ok\n");
    if (request.path == "/readyz") return handle_readyz();
    if (request.path == "/metrics") return handle_metrics(request);
    if (request.path == "/v1/scans") return handle_scans(request);
    if (request.path == "/v1/trips") return handle_trips(request);
    if (request.path == "/v1/arrival") {
      if (request.param_num("trip").has_value())
        return handle_trip_read(request);
      const auto route_num = request.param_num("route");
      if (route_num.has_value())
        return handle_route_arrival(
            request, static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(*route_num)));
      return handle_any_node(request);  // upstream explains the 400
    }
    if (request.path == "/v1/position") return handle_trip_read(request);
    if (request.path == "/v1/traffic-map") return handle_any_node(request);
    return error_json(404, "no such endpoint");
  } catch (const InvalidArgument& e) {
    return error_json(400, e.what());
  }
}

net::HttpResponse ClusterRouter::handle_scans(
    const net::HttpRequest& request) {
  if (request.method != "POST") {
    net::HttpResponse r = error_json(405, "method not allowed");
    r.headers["Allow"] = "POST";
    return r;
  }
  std::string decode_error;
  auto batch = net::decode_scan_batch(request.body, &decode_error);
  if (!batch.has_value()) return error_json(400, decode_error);
  if (batch->empty())
    return net::HttpResponse::json(
        200, "{\"submitted\":0,\"enqueued\":0,\"rejected_backpressure\":0}");

  // Split by each trip's first live replica and forward per node. Nodes
  // that fail mid-request are excluded and their slice re-split — the
  // in-request ladder, mirrored from forward_ladder. Any slice that
  // exhausts its replicas fails the WHOLE request with 503: scans
  // already landed stay (at-least-once; nodes dedup the client's
  // retransmit via the per-trip ingest-order guard) but nothing gets
  // acked, so an acked scan is always on some node.
  std::vector<bool> excluded(nodes_.size(), false);
  const auto choose = [&](std::uint64_t trip) -> std::optional<std::size_t> {
    for (const std::size_t node : ring_.ranked(trip))
      if (!excluded[node] && membership_.healthy(node)) return node;
    return std::nullopt;
  };

  std::uint64_t submitted = 0, enqueued = 0, rejected = 0;
  std::vector<std::uint64_t> acked(nodes_.size(), 0);
  std::vector<core::ScanSubmission> pending = std::move(*batch);
  for (std::size_t attempt = 0;
       !pending.empty() && attempt < nodes_.size(); ++attempt) {
    // Group the still-unacked submissions by their current target.
    std::vector<std::vector<core::ScanSubmission>> groups(nodes_.size());
    for (core::ScanSubmission& sub : pending) {
      const auto node = choose(sub.trip.value());
      if (!node.has_value()) {
        m_no_replica_->inc();
        return no_replica_503(options_.http.retry_after_s);
      }
      groups[*node].push_back(std::move(sub));
    }
    pending.clear();

    for (std::size_t node = 0; node < groups.size(); ++node) {
      std::vector<core::ScanSubmission>& group = groups[node];
      if (group.empty()) continue;
      bool ok = true;
      for (const core::ScanSubmission& sub : group) {
        if (!ensure_registered(node, sub.trip.value())) {
          ok = false;
          break;
        }
      }
      net::ClientResponse upstream;
      if (ok) {
        try {
          upstream = forward_to(node, request.path,
                                net::encode_scan_batch(group), true);
        } catch (const Error&) {
          m_upstream_errors_->inc();
          membership_.report_failure(node);
          ok = false;
        }
      }
      if (ok && upstream.status != 200) ok = false;
      if (!ok) {
        m_failovers_->inc();
        excluded[node] = true;
        for (core::ScanSubmission& sub : group)
          pending.push_back(std::move(sub));
        continue;
      }
      membership_.report_success(node);
      std::string parse_error;
      const auto doc = net::parse_json(upstream.body, &parse_error);
      if (doc.has_value()) {
        submitted += static_cast<std::uint64_t>(
            doc->get_number("submitted").value_or(0.0));
        enqueued += static_cast<std::uint64_t>(
            doc->get_number("enqueued").value_or(0.0));
        rejected += static_cast<std::uint64_t>(
            doc->get_number("rejected_backpressure").value_or(0.0));
        acked[node] += static_cast<std::uint64_t>(
            doc->get_number("submitted").value_or(0.0));
      }
    }
  }
  if (!pending.empty()) {
    m_no_replica_->inc();
    return no_replica_503(options_.http.retry_after_s);
  }

  // Every slice was acknowledged by some node — only now does the
  // ledger (and the client) see the scans as acked.
  for (std::size_t node = 0; node < acked.size(); ++node)
    if (acked[node] != 0)
      acked_scans_[node]->fetch_add(acked[node], std::memory_order_relaxed);
  std::ostringstream out;
  out << "{\"submitted\":" << submitted << ",\"enqueued\":" << enqueued
      << ",\"rejected_backpressure\":" << rejected << "}";
  return net::HttpResponse::json(200, out.str());
}

net::HttpResponse ClusterRouter::handle_trips(
    const net::HttpRequest& request) {
  if (request.method != "POST") {
    net::HttpResponse r = error_json(405, "method not allowed");
    r.headers["Allow"] = "POST";
    return r;
  }
  std::string parse_error;
  const auto doc = net::parse_json(request.body, &parse_error);
  if (!doc.has_value()) return error_json(400, "bad JSON: " + parse_error);
  const auto trip_num = doc->get_number("trip");
  if (!trip_num.has_value()) return error_json(400, "missing \"trip\"");
  const auto trip =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(*trip_num));
  const net::JsonValue* end = doc->get("end");
  const bool ending =
      end != nullptr && end->as_bool().has_value() && *end->as_bool();
  const auto route_num = doc->get_number("route");

  // Registration is idempotent on the upstream (409 = already active),
  // so the POST rides the retry ladder like a read.
  std::size_t served_by = nodes_.size();
  net::HttpResponse response = forward_ladder(ring_.ranked(trip), request,
                                              true, trip, false, &served_by);
  if (ending) {
    if (response.status == 200 || response.status == 404) {
      std::lock_guard<std::mutex> lock(routes_mu_);
      trip_routes_.erase(trip);
      trip_registered_.erase(trip);
    }
    return response;
  }
  if (route_num.has_value() &&
      (response.status == 200 || response.status == 409) &&
      served_by < nodes_.size()) {
    // Remember the placement so scans/reads can lazily re-register the
    // trip on a failover target.
    std::lock_guard<std::mutex> lock(routes_mu_);
    trip_routes_[trip] = static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(*route_num));
    trip_registered_[trip].insert(served_by);
    if (response.status == 409) response.status = 200;
  }
  return response;
}

net::HttpResponse ClusterRouter::handle_trip_read(
    const net::HttpRequest& request) {
  const auto trip_num = request.param_num("trip");
  if (!trip_num.has_value()) return handle_any_node(request);
  const auto trip =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(*trip_num));
  return forward_ladder(ring_.ranked(trip), request, true, trip, true);
}

net::HttpResponse ClusterRouter::handle_route_arrival(
    const net::HttpRequest& request, std::uint64_t route) {
  // A route's trips shard across nodes, so the rider-facing "soonest
  // bus on my route" query scatters to every healthy node and keeps
  // the earliest predicted arrival.
  std::optional<net::HttpResponse> best;
  double best_arrival = 0.0;
  std::optional<net::HttpResponse> miss;  ///< best non-200 fallback
  bool any_answered = false;
  for (std::size_t node = 0; node < nodes_.size(); ++node) {
    if (!membership_.healthy(node)) continue;
    net::ClientResponse upstream;
    try {
      upstream = forward_to(node, request.target, std::nullopt, true);
    } catch (const Error&) {
      m_upstream_errors_->inc();
      membership_.report_failure(node);
      continue;
    }
    membership_.report_success(node);
    any_answered = true;
    if (upstream.status != 200) {
      // Prefer a 404 ("no trip with a fix") over a transient 4xx/5xx.
      if (!miss.has_value() || upstream.status == 404)
        miss = relay(upstream);
      continue;
    }
    std::string parse_error;
    const auto doc = net::parse_json(upstream.body, &parse_error);
    const auto arrival =
        doc.has_value() ? doc->get_number("arrival_time") : std::nullopt;
    if (!arrival.has_value()) continue;
    if (!best.has_value() || *arrival < best_arrival) {
      best = relay(upstream);
      best_arrival = *arrival;
    }
  }
  (void)route;
  if (best.has_value()) return *std::move(best);
  if (miss.has_value()) return *std::move(miss);
  if (!any_answered) {
    m_no_replica_->inc();
    return no_replica_503(options_.http.retry_after_s);
  }
  return error_json(404, "no active trip with a fix on this route");
}

net::HttpResponse ClusterRouter::handle_any_node(
    const net::HttpRequest& request) {
  return forward_ladder(ring_.ranked(0), request,
                        request.method == "GET", 0, false);
}

net::HttpResponse ClusterRouter::handle_readyz() {
  const std::size_t healthy = membership_.healthy_count();
  std::ostringstream out;
  out << "{\"ready\":" << (healthy > 0 ? "true" : "false")
      << ",\"healthy_nodes\":" << healthy << ",\"nodes\":[";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i != 0) out << ',';
    out << "{\"id\":" << net::json_quote(nodes_[i].id)
        << ",\"addr\":" << net::json_quote(nodes_[i].host + ":" +
                                           std::to_string(nodes_[i].port))
        << ",\"healthy\":" << (membership_.healthy(i) ? "true" : "false")
        << ",\"consecutive_failures\":" << membership_.failures(i)
        << ",\"acked_scans\":"
        << acked_scans_[i]->load(std::memory_order_relaxed) << "}";
  }
  out << "]}";
  return net::HttpResponse::json(healthy > 0 ? 200 : 503, out.str());
}

net::HttpResponse ClusterRouter::handle_metrics(
    const net::HttpRequest& request) {
  if (request.method != "GET") {
    net::HttpResponse r = error_json(405, "method not allowed");
    r.headers["Allow"] = "GET";
    return r;
  }
  const obs::Snapshot snap = registry_.snapshot();
  const auto format = request.param("format");
  if (format.has_value() && *format == "prometheus") {
    net::HttpResponse r = net::HttpResponse::text(200, snap.prometheus());
    r.headers["Content-Type"] = "text/plain; version=0.0.4; charset=utf-8";
    return r;
  }
  return net::HttpResponse::json(200, snap.json());
}

net::HttpResponse ClusterRouter::forward_ladder(
    const std::vector<std::size_t>& order, const net::HttpRequest& request,
    bool idempotent, std::uint64_t trip_key, bool has_trip_key,
    std::size_t* served_by) {
  std::optional<net::HttpResponse> busy;  ///< last 503/429 answer
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t node = order[rank];
    if (!membership_.healthy(node)) continue;
    if (rank != 0) m_failovers_->inc();
    // A failover target may never have seen this trip — re-register it
    // from the router's trip->route cache before asking.
    if (has_trip_key && !ensure_registered(node, trip_key)) continue;
    net::ClientResponse upstream;
    try {
      upstream = forward_to(node, request.target,
                            request.method == "GET"
                                ? std::nullopt
                                : std::make_optional(request.body),
                            idempotent);
    } catch (const Error&) {
      m_upstream_errors_->inc();
      membership_.report_failure(node);
      continue;
    }
    membership_.report_success(node);
    if (upstream.status == 503 || upstream.status == 429) {
      // The node is alive but shedding — another replica may have
      // headroom. Keep its answer (it carries Retry-After) in case
      // every replica is busy.
      busy = relay(upstream);
      continue;
    }
    if (served_by != nullptr) *served_by = node;
    return relay(upstream);
  }
  if (busy.has_value()) return *std::move(busy);
  m_no_replica_->inc();
  return no_replica_503(options_.http.retry_after_s);
}

net::ClientResponse ClusterRouter::forward_to(
    std::size_t node, const std::string& target,
    const std::optional<std::string>& body, bool idempotent) {
  m_proxied_->inc();
  // On a transport error the throw destroys the checked-out client —
  // the suspect connection closes and the pool reconnects lazily.
  std::unique_ptr<net::HttpClient> client = checkout_client(node);
  net::ClientResponse response =
      !body.has_value()
          ? client->get(target)
          : client->post(target, *body, "application/json", idempotent);
  checkin_client(node, std::move(client));
  return response;
}

bool ClusterRouter::ensure_registered(std::size_t node, std::uint64_t trip) {
  std::uint64_t route = 0;
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    const auto seen = trip_registered_.find(trip);
    if (seen != trip_registered_.end() && seen->second.count(node) != 0)
      return true;
    const auto it = trip_routes_.find(trip);
    // Unknown placement (router restarted, or the trip was never
    // registered through us): forward anyway and let the node answer.
    if (it == trip_routes_.end()) return true;
    route = it->second;
  }
  std::ostringstream body;
  body << "{\"trip\":" << trip << ",\"route\":" << route << "}";
  net::ClientResponse response;
  try {
    response = forward_to(node, "/v1/trips", body.str(), true);
  } catch (const Error&) {
    m_upstream_errors_->inc();
    membership_.report_failure(node);
    return false;
  }
  membership_.report_success(node);
  if (response.status != 200 && response.status != 409) return false;
  {
    // The trip may have ended (and been erased) while we registered;
    // only remember the node if the placement entry still exists.
    std::lock_guard<std::mutex> lock(routes_mu_);
    const auto it = trip_routes_.find(trip);
    if (it != trip_routes_.end()) trip_registered_[trip].insert(node);
  }
  m_reregistrations_->inc();
  return true;
}

void ClusterRouter::probe_loop() {
  // The prober owns its own connections — clients_ belongs to the
  // event-loop thread.
  std::vector<std::unique_ptr<net::HttpClient>> probes;
  probes.reserve(nodes_.size());
  for (const NodeInfo& node : nodes_)
    probes.push_back(std::make_unique<net::HttpClient>(node.host, node.port,
                                                       options_.client));
  while (!stopping_.load(std::memory_order_acquire)) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (stopping_.load(std::memory_order_acquire)) return;
      bool up = false;
      try {
        up = probes[i]->get("/healthz").status == 200;
      } catch (const Error&) {
        up = false;
      }
      if (up) {
        membership_.report_success(i);
      } else {
        membership_.report_failure(i);
        m_probe_failures_->inc();
        probes[i]->disconnect();
      }
    }
    m_healthy_nodes_->set(static_cast<double>(membership_.healthy_count()));
    // Chunked sleep so stop() never waits out a full probe interval.
    double left = std::max(options_.probe_interval_s, 1e-3);
    while (left > 0.0 && !stopping_.load(std::memory_order_acquire)) {
      const double step = std::min(left, 0.005);
      std::this_thread::sleep_for(std::chrono::duration<double>(step));
      left -= step;
    }
  }
}

std::unique_ptr<net::HttpClient> ClusterRouter::checkout_client(
    std::size_t node) {
  NodePool& pool = *client_pools_[node];
  {
    std::lock_guard<std::mutex> lock(pool.mu);
    if (!pool.idle.empty()) {
      std::unique_ptr<net::HttpClient> client =
          std::move(pool.idle.back());
      pool.idle.pop_back();
      return client;
    }
  }
  return std::make_unique<net::HttpClient>(nodes_[node].host,
                                           nodes_[node].port,
                                           options_.client);
}

void ClusterRouter::checkin_client(std::size_t node,
                                   std::unique_ptr<net::HttpClient> client) {
  // Bound the pool to the loop count: steady state never needs more
  // than one connection per serving thread per node.
  const std::size_t cap = std::max<std::size_t>(1, options_.http.loops);
  NodePool& pool = *client_pools_[node];
  std::lock_guard<std::mutex> lock(pool.mu);
  if (pool.idle.size() < cap) pool.idle.push_back(std::move(client));
}

}  // namespace wiloc::cluster
