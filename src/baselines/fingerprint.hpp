// RSS fingerprinting baseline (RADAR/Horus family — paper Section VI-A).
//
// Offline, an expert survey records the mean RSS vector at reference
// points along the route (the labor-intensive calibration the paper
// criticizes). Online, a scan is matched to the k nearest reference
// points in signal space. The baseline exposes the family's two
// weaknesses on purpose: calibration cost (survey density / scans per
// point are explicit knobs) and fragility to AP dynamics (a dead AP
// skews the signal distance; there is no rank abstraction to absorb it).
#pragma once

#include <vector>

#include "rf/registry.hpp"
#include "rf/scan.hpp"
#include "roadnet/route.hpp"
#include "svd/positioning_index.hpp"

namespace wiloc::baselines {

struct FingerprintParams {
  double survey_step_m = 15.0;     ///< reference point spacing
  std::size_t survey_scans = 8;    ///< scans averaged per reference point
  std::size_t k_neighbors = 3;     ///< kNN size
  double missing_penalty_db = 12.0;  ///< distance for an AP heard on one
                                     ///< side only
};

/// Offline-calibrated kNN localizer; implements PositioningIndex so it
/// can be dropped into the same tracking pipeline as WiLocator.
class FingerprintLocalizer final : public svd::PositioningIndex {
 public:
  /// Runs the calibration survey along the route with the given
  /// registry/model at time `survey_time` (APs in outage then are
  /// absent from the database — the dynamics hazard).
  FingerprintLocalizer(const roadnet::BusRoute& route,
                       const rf::ApRegistry& registry,
                       const rf::PropagationModel& model,
                       SimTime survey_time, Rng& rng,
                       FingerprintParams params = {});

  /// Signal-space kNN over the reference database; scores are a
  /// monotone transform of signal distance.
  std::vector<svd::Candidate> locate(
      const std::vector<rf::ApId>& observed) const override;

  /// kNN over a full scan (uses the RSS values, which the rank-based
  /// interface above cannot); preferred entry point for this baseline.
  std::vector<svd::Candidate> locate_scan(const rf::WifiScan& scan) const;

  double route_length() const override { return length_; }

  std::size_t reference_count() const { return points_.size(); }

 private:
  struct ReferencePoint {
    double offset;
    std::vector<rf::ApReading> mean_rss;  ///< sorted by AP id
  };

  double signal_distance(const std::vector<rf::ApReading>& a,
                         const std::vector<rf::ApReading>& b) const;

  FingerprintParams params_;
  double length_ = 0.0;
  std::vector<ReferencePoint> points_;
};

}  // namespace wiloc::baselines
