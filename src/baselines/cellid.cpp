#include "baselines/cellid.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace wiloc::baselines {

CellIdTracker::CellIdTracker(const roadnet::BusRoute& route,
                             const rf::TowerRegistry& towers,
                             CellIdParams params)
    : params_(params) {
  WILOC_EXPECTS(params_.sample_step_m > 0.0);
  WILOC_EXPECTS(params_.max_suffix >= 1);
  WILOC_EXPECTS(towers.count() > 0);

  const double length = route.length();
  const auto steps = static_cast<std::size_t>(
      std::ceil(length / params_.sample_step_m));
  const auto serving = [&](double offset) {
    const geo::Point p = route.point_at(offset);
    rf::TowerId best;
    double best_rss = -1e300;
    for (const rf::CellTower& tower : towers.towers()) {
      const double rss = towers.mean_rss(tower, p);
      if (rss > best_rss) {
        best_rss = rss;
        best = tower.id;
      }
    }
    return best;
  };

  rf::TowerId current = serving(0.0);
  double run_begin = 0.0;
  for (std::size_t i = 1; i <= steps; ++i) {
    const double offset =
        length * static_cast<double>(i) / static_cast<double>(steps);
    const rf::TowerId tower = serving(offset);
    if (!(tower == current)) {
      intervals_.push_back({current, run_begin, offset});
      current = tower;
      run_begin = offset;
    }
  }
  intervals_.push_back({current, run_begin, length});
}

void CellIdTracker::reset() {
  sequence_.clear();
  last_estimate_.reset();
}

std::vector<double> CellIdTracker::match_suffix(
    std::size_t suffix_len) const {
  std::vector<double> out;
  if (suffix_len == 0 || sequence_.size() < suffix_len) return out;
  const auto* suffix = &sequence_[sequence_.size() - suffix_len];
  // Find every position in the interval sequence where the suffix ends.
  for (std::size_t end = suffix_len - 1; end < intervals_.size(); ++end) {
    bool match = true;
    for (std::size_t k = 0; k < suffix_len; ++k) {
      if (!(intervals_[end - (suffix_len - 1) + k].tower == suffix[k])) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(intervals_[end].mid());
  }
  return out;
}

std::vector<double> CellIdTracker::candidates() const {
  const std::size_t len =
      std::min(params_.max_suffix, sequence_.size());
  return match_suffix(len);
}

std::optional<double> CellIdTracker::ingest(const rf::CellObservation& obs) {
  if (sequence_.empty() || !(sequence_.back() == obs.tower))
    sequence_.push_back(obs.tower);
  // Bound the memory: only the matched suffix matters.
  if (sequence_.size() > params_.max_suffix * 4) {
    sequence_.erase(sequence_.begin(),
                    sequence_.end() -
                        static_cast<std::ptrdiff_t>(params_.max_suffix * 2));
  }

  // Use the longest suffix that yields a unique match; fall back to the
  // last estimate when ambiguous.
  for (std::size_t len = std::min(params_.max_suffix, sequence_.size());
       len >= 1; --len) {
    const auto matches = match_suffix(len);
    if (matches.size() == 1) {
      last_estimate_ = matches.front();
      return last_estimate_;
    }
    if (matches.empty()) continue;  // noise tower: try a shorter suffix
    break;  // ambiguous at this length; longer is stricter, so stop
  }
  return last_estimate_;
}

}  // namespace wiloc::baselines
