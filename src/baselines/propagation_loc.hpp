// Propagation-model baseline (EZ-style — paper Section VI-A).
//
// Inverts an *assumed* global log-distance model to turn each RSS
// reading into a distance estimate, then solves weighted least-squares
// lateration by Gauss-Newton. The assumed global parameters necessarily
// mismatch the per-AP truth (that mismatch is the family's documented
// weakness: "solutions of this line suffer from low accuracy").
#pragma once

#include <optional>

#include "rf/registry.hpp"
#include "rf/scan.hpp"
#include "roadnet/route.hpp"

namespace wiloc::baselines {

struct PropagationLocParams {
  double assumed_tx_power_dbm = -33.0;  ///< global P0 guess
  double assumed_exponent = 3.0;        ///< global n guess
  std::size_t max_iterations = 12;      ///< Gauss-Newton iterations
  std::size_t min_aps = 3;              ///< lateration needs >= 3 anchors
};

/// Least-squares lateration localizer over geo-tagged APs.
class PropagationLocalizer {
 public:
  /// `registry` supplies AP geo-tags; must outlive the localizer.
  explicit PropagationLocalizer(const rf::ApRegistry& registry,
                                PropagationLocParams params = {});

  /// Ranging: assumed-model distance (m) for an RSS reading.
  double distance_from_rss(double rssi_dbm) const;

  /// 2D position estimate from one scan; nullopt with < min_aps
  /// readings.
  std::optional<geo::Point> locate_point(const rf::WifiScan& scan) const;

  /// Position projected onto a route (mobility constraint applied
  /// post-hoc); nullopt when locate_point fails.
  std::optional<double> locate_on_route(const rf::WifiScan& scan,
                                        const roadnet::BusRoute& route) const;

 private:
  const rf::ApRegistry* registry_;
  PropagationLocParams params_;
};

}  // namespace wiloc::baselines
