#include "baselines/fingerprint.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "svd/signature.hpp"

#include "util/contracts.hpp"

namespace wiloc::baselines {

FingerprintLocalizer::FingerprintLocalizer(const roadnet::BusRoute& route,
                                           const rf::ApRegistry& registry,
                                           const rf::PropagationModel& model,
                                           SimTime survey_time, Rng& rng,
                                           FingerprintParams params)
    : params_(params), length_(route.length()) {
  WILOC_EXPECTS(params_.survey_step_m > 0.0);
  WILOC_EXPECTS(params_.survey_scans >= 1);
  WILOC_EXPECTS(params_.k_neighbors >= 1);

  const rf::Scanner scanner;  // default phone characteristics
  const auto steps = static_cast<std::size_t>(
      std::ceil(length_ / params_.survey_step_m));
  points_.reserve(steps + 1);
  for (std::size_t i = 0; i <= steps; ++i) {
    const double offset =
        length_ * static_cast<double>(i) / static_cast<double>(steps);
    const geo::Point p = route.point_at(offset);
    std::vector<rf::WifiScan> scans;
    scans.reserve(params_.survey_scans);
    for (std::size_t s = 0; s < params_.survey_scans; ++s) {
      rf::WifiScan scan = scanner.scan(registry, model, p, survey_time, rng);
      if (!scan.empty()) scans.push_back(std::move(scan));
    }
    if (scans.empty()) continue;  // radio-dead reference point: skip
    rf::WifiScan merged = rf::merge_scans(scans);
    std::sort(merged.readings.begin(), merged.readings.end(),
              [](const rf::ApReading& a, const rf::ApReading& b) {
                return a.ap < b.ap;
              });
    points_.push_back({offset, std::move(merged.readings)});
  }
}

double FingerprintLocalizer::signal_distance(
    const std::vector<rf::ApReading>& a,
    const std::vector<rf::ApReading>& b) const {
  // Euclidean distance over the union of APs; an AP heard on only one
  // side contributes the fixed missing-AP penalty.
  double sum = 0.0;
  std::size_t dims = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  const double miss = params_.missing_penalty_db;
  while (i < a.size() || j < b.size()) {
    ++dims;
    if (j >= b.size() || (i < a.size() && a[i].ap < b[j].ap)) {
      sum += miss * miss;
      ++i;
    } else if (i >= a.size() || b[j].ap < a[i].ap) {
      sum += miss * miss;
      ++j;
    } else {
      const double d = a[i].rssi_dbm - b[j].rssi_dbm;
      sum += d * d;
      ++i;
      ++j;
    }
  }
  if (dims == 0) return 1e9;
  return std::sqrt(sum / static_cast<double>(dims));
}

std::vector<svd::Candidate> FingerprintLocalizer::locate_scan(
    const rf::WifiScan& scan) const {
  if (scan.empty() || points_.empty()) return {};
  std::vector<rf::ApReading> readings = scan.readings;
  std::sort(readings.begin(), readings.end(),
            [](const rf::ApReading& a, const rf::ApReading& b) {
              return a.ap < b.ap;
            });

  std::vector<std::pair<double, std::size_t>> distances;
  distances.reserve(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i)
    distances.emplace_back(signal_distance(readings, points_[i].mean_rss),
                           i);
  const std::size_t k = std::min(params_.k_neighbors, distances.size());
  std::partial_sort(distances.begin(),
                    distances.begin() + static_cast<std::ptrdiff_t>(k),
                    distances.end());

  // Weighted centroid of the k nearest reference points.
  double weight_sum = 0.0;
  double weighted_offset = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (1.0 + distances[i].first);
    weight_sum += w;
    weighted_offset += w * points_[distances[i].second].offset;
  }
  const double score = 1.0 / (1.0 + distances.front().first / 6.0);
  return {{weighted_offset / weight_sum, std::clamp(score, 0.0, 1.0)}};
}

std::vector<svd::Candidate> FingerprintLocalizer::locate(
    const std::vector<rf::ApId>& observed) const {
  // Rank-only entry point so the common tracking pipeline can drive this
  // baseline: match the observed ranking against each reference point's
  // own RSS ranking (the values themselves are not comparable to an
  // external ranking, but their order is).
  if (observed.empty() || points_.empty()) return {};
  double best_score = -1.0;
  double weighted_offset = 0.0;
  double weight_sum = 0.0;
  std::vector<std::pair<double, std::size_t>> scored;
  scored.reserve(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    auto readings = points_[i].mean_rss;
    std::sort(readings.begin(), readings.end(),
              [](const rf::ApReading& a, const rf::ApReading& b) {
                if (a.rssi_dbm != b.rssi_dbm) return a.rssi_dbm > b.rssi_dbm;
                return a.ap < b.ap;
              });
    std::vector<rf::ApId> ranked;
    ranked.reserve(std::min<std::size_t>(readings.size(), 4));
    for (std::size_t r = 0; r < readings.size() && r < 4; ++r)
      ranked.push_back(readings[r].ap);
    const double score =
        svd::rank_consistency(observed, svd::RankSignature(ranked));
    scored.emplace_back(score, i);
    best_score = std::max(best_score, score);
  }
  if (best_score <= 0.0) return {};
  // Weighted centroid of the near-best reference points.
  for (const auto& [score, i] : scored) {
    if (score >= best_score - 0.05) {
      weighted_offset += score * points_[i].offset;
      weight_sum += score;
    }
  }
  return {{weighted_offset / weight_sum, best_score}};
}

}  // namespace wiloc::baselines
