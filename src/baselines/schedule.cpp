#include "baselines/schedule.hpp"

namespace wiloc::baselines {

namespace {
core::PredictorOptions schedule_options() {
  core::PredictorOptions opts;
  opts.use_recent = false;  // the whole point of the baseline
  return opts;
}

core::TrafficMapParams agency_traffic_params() {
  core::TrafficMapParams params;
  params.infer_unknowns = false;  // silent segments stay unconfirmed
  return params;
}
}  // namespace

SchedulePredictor::SchedulePredictor(const core::TravelTimeStore& store)
    : predictor_(store, schedule_options()) {}

SimTime SchedulePredictor::predict_arrival(const roadnet::BusRoute& route,
                                           double current_offset,
                                           SimTime now,
                                           std::size_t stop_index) const {
  return predictor_.predict_arrival(route, current_offset, now, stop_index);
}

double SchedulePredictor::predict_travel_time(const roadnet::BusRoute& route,
                                              double from, double to,
                                              SimTime t) const {
  return predictor_.predict_travel_time(route, from, to, t);
}

AgencyTrafficMap::AgencyTrafficMap(const core::TravelTimeStore& store,
                                   const core::ArrivalPredictor& predictor)
    : builder_(store, predictor, agency_traffic_params()) {}

core::TrafficMap AgencyTrafficMap::build(
    const std::vector<roadnet::EdgeId>& edges, SimTime now) const {
  return builder_.build(edges, now);
}

}  // namespace wiloc::baselines
