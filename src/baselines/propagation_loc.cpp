#include "baselines/propagation_loc.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace wiloc::baselines {

PropagationLocalizer::PropagationLocalizer(const rf::ApRegistry& registry,
                                           PropagationLocParams params)
    : registry_(&registry), params_(params) {
  WILOC_EXPECTS(params_.assumed_exponent > 0.0);
  WILOC_EXPECTS(params_.min_aps >= 3);
}

double PropagationLocalizer::distance_from_rss(double rssi_dbm) const {
  // Invert P0 - 10 n log10(d) = rss.
  const double exponent = (params_.assumed_tx_power_dbm - rssi_dbm) /
                          (10.0 * params_.assumed_exponent);
  return std::pow(10.0, exponent);
}

std::optional<geo::Point> PropagationLocalizer::locate_point(
    const rf::WifiScan& scan) const {
  if (scan.readings.size() < params_.min_aps) return std::nullopt;

  struct Anchor {
    geo::Point position;
    double range;
    double weight;
  };
  std::vector<Anchor> anchors;
  anchors.reserve(scan.readings.size());
  double x0 = 0.0;
  double y0 = 0.0;
  double w_sum = 0.0;
  for (const rf::ApReading& r : scan.readings) {
    const rf::AccessPoint& ap = registry_->ap(r.ap);
    const double range = distance_from_rss(r.rssi_dbm);
    // Stronger readings are shorter ranges and more trustworthy.
    const double weight = 1.0 / (1.0 + range / 40.0);
    anchors.push_back({ap.position, range, weight});
    x0 += weight * ap.position.x;
    y0 += weight * ap.position.y;
    w_sum += weight;
  }
  geo::Point p{x0 / w_sum, y0 / w_sum};  // warm start: weighted centroid

  // Gauss-Newton on sum_i w_i (|p - a_i| - r_i)^2.
  for (std::size_t iter = 0; iter < params_.max_iterations; ++iter) {
    double gx = 0.0;
    double gy = 0.0;
    double h = 0.0;  // scalar Gauss-Newton step scale (diagonal approx)
    for (const Anchor& a : anchors) {
      const geo::Vec d = p - a.position;
      const double dist = std::max(d.norm(), 1e-3);
      const double err = dist - a.range;
      gx += a.weight * err * d.x / dist;
      gy += a.weight * err * d.y / dist;
      h += a.weight;
    }
    if (h <= 0.0) break;
    const geo::Vec step{-gx / h, -gy / h};
    p = p + step;
    if (step.norm() < 0.05) break;
  }
  return p;
}

std::optional<double> PropagationLocalizer::locate_on_route(
    const rf::WifiScan& scan, const roadnet::BusRoute& route) const {
  const auto point = locate_point(scan);
  if (!point.has_value()) return std::nullopt;
  return route.project(*point).route_offset;
}

}  // namespace wiloc::baselines
