// "Transit Agency" baseline (the comparison curve of Fig. 8b).
//
// An AVL-less agency publishes arrival estimates from historical
// schedules: per-route per-slot mean travel times with *no* live
// correction. This is exactly WiLocator's Eq. 9 with the Eq.-8 recent
// term switched off — so the baseline shares the store and diverges from
// WiLocator precisely by the paper's claimed contribution (temporal
// consistency across routes). Its traffic map only marks segments whose
// own route has fresh data, leaving others *unconfirmed* — the gap the
// paper points out in Fig. 11(b).
#pragma once

#include "core/predictor.hpp"
#include "core/traffic_map.hpp"

namespace wiloc::baselines {

/// Schedule-based arrival prediction over the shared TravelTimeStore.
class SchedulePredictor {
 public:
  /// `store` must outlive the predictor.
  explicit SchedulePredictor(const core::TravelTimeStore& store);

  /// Historical-mean arrival estimate (no recent correction).
  SimTime predict_arrival(const roadnet::BusRoute& route,
                          double current_offset, SimTime now,
                          std::size_t stop_index) const;

  double predict_travel_time(const roadnet::BusRoute& route, double from,
                             double to, SimTime t) const;

  const core::ArrivalPredictor& inner() const { return predictor_; }

 private:
  core::ArrivalPredictor predictor_;
};

/// Agency-style traffic map: same-route recents only, no inference for
/// silent segments (they stay Unknown/"unconfirmed").
class AgencyTrafficMap {
 public:
  AgencyTrafficMap(const core::TravelTimeStore& store,
                   const core::ArrivalPredictor& predictor);

  core::TrafficMap build(const std::vector<roadnet::EdgeId>& edges,
                         SimTime now) const;

 private:
  core::TrafficMapBuilder builder_;
};

}  // namespace wiloc::baselines
