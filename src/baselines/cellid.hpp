// Cell-ID sequence matching baseline ([15], [27]-[29] in the paper).
//
// Offline, each route is fingerprinted as the sequence of serving-tower
// intervals along it. Online, the tracker accumulates the distinct
// tower ids it has observed and matches that suffix against the route's
// interval sequence. The paper's criticisms fall straight out of the
// construction: towers are ~800 m cells (coarse positions), a stable
// multi-tower sequence takes minutes to accumulate, and overlapped road
// segments produce identical sequences across routes.
#pragma once

#include <optional>
#include <vector>

#include "rf/cellular.hpp"
#include "roadnet/route.hpp"

namespace wiloc::baselines {

struct CellIdParams {
  double sample_step_m = 25.0;    ///< route fingerprint resolution
  std::size_t max_suffix = 4;     ///< matched tower-sequence length
};

/// Per-route Cell-ID positioning index + online tracker.
class CellIdTracker {
 public:
  /// An interval of the route served by one tower.
  struct TowerInterval {
    rf::TowerId tower;
    double begin;
    double end;
    double mid() const { return (begin + end) / 2.0; }
  };

  /// Fingerprints the route against the tower registry (noise-free
  /// expected serving tower).
  CellIdTracker(const roadnet::BusRoute& route,
                const rf::TowerRegistry& towers, CellIdParams params = {});

  const std::vector<TowerInterval>& intervals() const { return intervals_; }

  /// Feeds one observation; returns the current position estimate (the
  /// midpoint of the last interval of the best suffix match), or nullopt
  /// while the sequence is ambiguous or unseen.
  std::optional<double> ingest(const rf::CellObservation& obs);

  /// Distinct-tower sequence observed so far (most recent last).
  const std::vector<rf::TowerId>& observed_sequence() const {
    return sequence_;
  }

  /// Candidate end positions of the current suffix (diagnostic: >1 means
  /// the sequence is still ambiguous).
  std::vector<double> candidates() const;

  void reset();

 private:
  std::vector<double> match_suffix(std::size_t suffix_len) const;

  CellIdParams params_;
  std::vector<TowerInterval> intervals_;
  std::vector<rf::TowerId> sequence_;
  std::optional<double> last_estimate_;
};

}  // namespace wiloc::baselines
