// GPS tracking baseline (EasyTracker-style — paper Section II).
//
// Consumes (noisy, gappy) GPS fixes, projects them onto the route, and
// applies the same no-reverse mobility clamp WiLocator uses — so the
// comparison isolates the *sensing* difference. In urban canyons the
// projection error balloons and outages leave gaps; that is the paper's
// argument against GPS in cities, and the Fig. 10 scenario ("the noisy
// reading by GPS is mapped to the true location") in reverse.
#pragma once

#include <optional>
#include <vector>

#include "core/mobility_filter.hpp"
#include "roadnet/route.hpp"

namespace wiloc::baselines {

/// Online GPS-to-route tracker.
class GpsTracker {
 public:
  /// `route` must outlive the tracker.
  explicit GpsTracker(const roadnet::BusRoute& route,
                      core::MobilityFilterParams params = {});

  /// Feeds one GPS fix (nullopt = outage at that sample time). Returns
  /// the filtered route position when available.
  std::optional<core::Fix> ingest(SimTime t,
                                  std::optional<geo::Point> gps_fix);

  const std::vector<core::Fix>& fixes() const { return fixes_; }

 private:
  const roadnet::BusRoute* route_;
  core::MobilityFilter filter_;
  std::vector<core::Fix> fixes_;
};

}  // namespace wiloc::baselines
