#include "baselines/gps_tracker.hpp"

#include <algorithm>
#include <cmath>

namespace wiloc::baselines {

GpsTracker::GpsTracker(const roadnet::BusRoute& route,
                       core::MobilityFilterParams params)
    : route_(&route), filter_(params) {}

std::optional<core::Fix> GpsTracker::ingest(
    SimTime t, std::optional<geo::Point> gps_fix) {
  std::vector<svd::Candidate> candidates;
  if (gps_fix.has_value()) {
    const auto proj = route_->project(*gps_fix);
    // Confidence decays with off-route distance: a fix projected from
    // far away (canyon multipath) is worth little.
    const double score =
        std::clamp(1.0 / (1.0 + proj.distance / 25.0), 0.0, 1.0);
    candidates.push_back({proj.route_offset, score});
  }
  const auto fix = filter_.update(t, candidates);
  if (fix.has_value()) fixes_.push_back(*fix);
  return fix;
}

}  // namespace wiloc::baselines
