// Real-time traffic map (paper Sections IV & V-B3).
//
// Per segment, the classifier standardizes the *recent travel-time
// residual* against the segment's historical residual distribution:
// z = (eps_recent - E[eps]) / sigma(eps). Working on residuals rather
// than velocities removes the route-dependent factor (a Rapid bus is
// always faster) and the segment-dependent speed limit. Rule of thumb
// thresholds: |z| beyond 1.64 -> "very slow" (95% confidence), beyond
// 1.00 -> "slow". Segments with no recent traversal are "unknown" — the
// unconfirmed segments the paper criticizes in the agency map; WiLocator
// fills them using the temporal-constancy prediction.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/predictor.hpp"
#include "core/travel_time.hpp"
#include "util/binio.hpp"
#include "util/obs.hpp"

namespace wiloc::core {

enum class TrafficState { Unknown, Normal, Slow, VerySlow };

/// Rendering helper for bench/example output.
const char* to_string(TrafficState state);

/// One segment's classification.
struct SegmentTraffic {
  TrafficState state = TrafficState::Unknown;
  double z_score = 0.0;      ///< standardized residual (0 when unknown)
  std::size_t recent_count = 0;
  bool inferred = false;     ///< true when filled by prediction, not data
};

struct TrafficMapParams {
  double very_slow_z = 1.64;  ///< 95% one-sided rule of thumb
  double slow_z = 1.00;
  double recent_window_s = 35.0 * 60.0;
  std::size_t max_recent = 8;
  bool infer_unknowns = true;  ///< predict segments with no recent pass
};

/// Obs handles for classification outcomes; all-null by default.
struct TrafficMetrics {
  obs::Counter* normal = nullptr;
  obs::Counter* slow = nullptr;
  obs::Counter* very_slow = nullptr;
  obs::Counter* unknown = nullptr;
  obs::Counter* inferred = nullptr;  ///< filled by prediction, not data
};

/// The traffic map over a set of edges at one instant.
struct TrafficMap {
  SimTime time = 0.0;
  std::unordered_map<roadnet::EdgeId, SegmentTraffic> segments;

  std::size_t count(TrafficState state) const;
  std::size_t unknown_count() const { return count(TrafficState::Unknown); }
};

/// Serializes a map (time + every segment state) for the persistence
/// layer; decode_traffic_map() rebuilds it.
void encode_traffic_map(BinWriter& w, const TrafficMap& map);
TrafficMap decode_traffic_map(BinReader& r);

/// Builds traffic maps from the store (+ predictor for inference).
class TrafficMapBuilder {
 public:
  /// `store` must be finalized; both must outlive the builder.
  TrafficMapBuilder(const TravelTimeStore& store,
                    const ArrivalPredictor& predictor,
                    TrafficMapParams params = {});

  /// Classifies the given edges at time `now`.
  TrafficMap build(const std::vector<roadnet::EdgeId>& edges,
                   SimTime now) const;

  /// Classifies one edge.
  SegmentTraffic classify(roadnet::EdgeId edge, SimTime now) const;

  void set_metrics(const TrafficMetrics& metrics) { metrics_ = metrics; }

  /// The most recent map produced by build() (nullopt before the
  /// first). The server checkpoints this, so a freshly recovered
  /// process can serve the pre-crash (stale but labelled) map while
  /// new observations accumulate. Single-control-thread, like every
  /// query path.
  const std::optional<TrafficMap>& last_map() const { return last_map_; }

  /// The store epoch observed by the most recent build(). The arrival
  /// table rebuilds its pre-encoded traffic-map body only when
  /// `store.epoch()` has moved past this value.
  std::uint64_t last_build_epoch() const { return last_build_epoch_; }

  /// Serializes the last built map (if any) into `w`.
  void save(BinWriter& w) const;
  /// Restores the last-map cache written by save().
  void restore(BinReader& r);

 private:
  TrafficState state_for_z(double z) const;
  void count_state(const SegmentTraffic& seg) const;

  const TravelTimeStore* store_;
  const ArrivalPredictor* predictor_;
  TrafficMapParams params_;
  TrafficMetrics metrics_;
  /// Mutable: build() is a const query but refreshes the cache.
  mutable std::optional<TrafficMap> last_map_;
  mutable std::uint64_t last_build_epoch_ = 0;
};

}  // namespace wiloc::core
