#include "core/trip_planner.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace wiloc::core {

TripPlanner::TripPlanner(const WiLocatorServer& server) : server_(&server) {}

std::vector<TripOption> TripPlanner::plan(
    const roadnet::BusRoute& route, std::size_t origin,
    std::size_t destination, SimTime now,
    const std::vector<roadnet::TripId>& trips) const {
  WILOC_EXPECTS(origin < destination);
  WILOC_EXPECTS(destination < route.stop_count());

  const double origin_offset = route.stop_offset(origin);
  std::vector<TripOption> options;
  for (const roadnet::TripId trip : trips) {
    if (!server_->has_trip(trip)) continue;
    const auto position = server_->position(trip);
    if (!position.has_value()) continue;       // no fix yet
    if (*position > origin_offset) continue;   // already passed the rider
    const auto eta_origin = server_->eta(trip, origin, now);
    const auto eta_dest = server_->eta(trip, destination, now);
    if (!eta_origin.has_value() || !eta_dest.has_value()) continue;
    TripOption option;
    option.trip = trip;
    option.route = route.id();
    option.route_name = route.name();
    option.eta_origin = *eta_origin;
    option.eta_destination = *eta_dest;
    option.wait_s = std::max(0.0, *eta_origin - now);
    option.ride_s = std::max(0.0, *eta_dest - *eta_origin);
    options.push_back(std::move(option));
  }
  std::sort(options.begin(), options.end(),
            [](const TripOption& a, const TripOption& b) {
              return a.eta_destination < b.eta_destination;
            });
  return options;
}

}  // namespace wiloc::core
