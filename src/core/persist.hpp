// Durable state & crash recovery for the learned travel-time layer.
//
// Everything WiLocator *learns* — per-(edge,route,slot) history means,
// residual statistics, and the cross-route recent-correction rings — is
// what separates a warm server from cold start. StatePersistence makes
// that state crash-tolerant with the classic checkpoint + write-ahead
// split:
//
//  - every observation entering the store is appended to a CRC-framed
//    journal (util/journal), stamped with a monotonic sequence number;
//  - periodically (sim-time interval or journal-size trigger) the whole
//    store is serialized into an atomic snapshot file embedding the
//    journal watermark, and the journal is truncated
//    (snapshot-then-truncate compaction);
//  - recovery loads the snapshot (if any), then replays journal frames
//    *after* the watermark. A frame at or below the watermark, or an
//    observation the store already holds, is skipped — replay is
//    idempotent, so the crash window between snapshot-write and
//    journal-truncate cannot double-count.
//
// Partial recovery is graceful by construction: a corrupt journal
// record or a torn tail bumps `persist.corrupt` and is skipped; a
// corrupt snapshot bumps the metric and recovery continues from the
// journal alone. Recovery never aborts the server.
//
// Journal appends always run on the control thread (the server's
// publish/query side), never on the ingest engine's shard workers.
// Checkpoints come in two flavors:
//
//  - write_checkpoint(): the synchronous path (shutdown, finalize,
//    recovery fold) — snapshot + truncate inline on the caller.
//  - seal_journal() + commit_checkpoint(): the two-phase path a
//    background checkpoint thread uses. seal_journal() runs on the
//    control thread and atomically rotates the active journal to a
//    sealed side file (appends continue into a fresh journal, ordering
//    preserved by the seq watermark); commit_checkpoint() then does the
//    expensive snapshot write + fsync on the background thread and
//    deletes the sealed file it supersedes. A crash anywhere in the
//    window leaves snapshot+sealed+active journals whose overlap
//    recovery dedups via the embedded watermark.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/travel_time.hpp"
#include "util/journal.hpp"
#include "util/obs.hpp"

namespace wiloc::core {

/// Where and how aggressively the server persists learned state.
/// An empty `dir` disables persistence entirely (the default).
struct PersistenceConfig {
  std::string dir;  ///< state directory; created on demand

  /// Sim-time between periodic checkpoints (measured on the exit times
  /// of the observations flowing through the store).
  double snapshot_interval_s = 15.0 * 60.0;
  /// Journal size that forces a checkpoint regardless of the interval.
  std::uint64_t journal_trigger_bytes = 4ull << 20;
  journal::FsyncPolicy fsync = journal::FsyncPolicy::on_checkpoint;
  /// Recover automatically in the WiLocatorServer constructor when the
  /// directory already holds state.
  bool recover_on_start = true;
  /// Test-only crash injection (see sim::CrashInjector); invoked at
  /// named sites inside the journal/snapshot writers.
  journal::FailureHook failure_hook;

  bool enabled() const { return !dir.empty(); }
};

/// Obs handles for the persistence path; all-null by default.
struct PersistMetrics {
  obs::Counter* snapshots = nullptr;        ///< persist.snapshots
  obs::Counter* journal_appends = nullptr;  ///< persist.journal_appends
  obs::Counter* recovered = nullptr;        ///< persist.recovered
  obs::Counter* skipped = nullptr;          ///< persist.skipped
  obs::Counter* corrupt = nullptr;          ///< persist.corrupt
  obs::Counter* config_mismatch = nullptr;  ///< persist.config_mismatch
  obs::Gauge* journal_bytes = nullptr;      ///< persist.journal_bytes
};

/// Journal record types (first payload byte after the sequence number).
enum class JournalRecord : std::uint8_t {
  history_obs = 1,  ///< offline training observation (pre-finalize)
  recent_obs = 2,   ///< live completed-segment traversal
};

/// Exact identity of one observation; the dedup key for idempotent
/// history loading and journal replay.
struct ObservationKey {
  std::uint32_t edge = 0;
  std::uint32_t route = 0;
  std::uint64_t exit_bits = 0;
  std::uint64_t travel_bits = 0;

  static ObservationKey of(const TravelObservation& obs);
  friend bool operator==(const ObservationKey&,
                         const ObservationKey&) = default;
  struct Hash {
    std::size_t operator()(const ObservationKey& k) const;
  };
};

/// Snapshot + journal manager for one state directory. Owns the journal
/// writer; the server drives it from the control thread.
class StatePersistence {
 public:
  /// Creates the directory when missing and opens the journal.
  explicit StatePersistence(PersistenceConfig config);

  void set_metrics(const PersistMetrics& metrics) { metrics_ = metrics; }

  const PersistenceConfig& config() const { return config_; }
  std::string snapshot_path() const { return config_.dir + "/state.snapshot"; }
  std::string journal_path() const { return config_.dir + "/state.journal"; }
  /// Side file holding journal frames already covered by an in-flight
  /// (or crashed) two-phase checkpoint; replayed before the active
  /// journal on recovery.
  std::string sealed_journal_path() const {
    return config_.dir + "/state.journal.sealed";
  }

  /// Appends one seq-stamped observation record to the journal.
  void append(JournalRecord type, const TravelObservation& obs);

  /// True once a persistence operation failed (I/O error or injected
  /// crash). A poisoned manager must not be written through again —
  /// in particular the server's destructor checkpoint is skipped, so a
  /// simulated crash cannot leak post-crash state to disk.
  bool poisoned() const {
    return poisoned_.load(std::memory_order_acquire) ||
           (writer_ != nullptr && writer_->dead());
  }

  /// True when the interval or journal-size trigger has fired since the
  /// last checkpoint.
  bool should_checkpoint(SimTime now) const;

  /// Atomically writes `body` as the new snapshot, then truncates the
  /// journal (and removes any sealed segment) it supersedes. `body`
  /// must embed last_seq() so the next recovery can dedup the
  /// snapshot/journal overlap. Synchronous: caller-thread I/O.
  void write_checkpoint(std::span<const std::byte> body, SimTime now);

  // -- two-phase (background) checkpointing ------------------------------

  /// Phase 1, control thread: rotates the active journal into the
  /// sealed side file (concatenating when a crashed checkpoint left one
  /// behind) and reopens a fresh journal for subsequent appends. After
  /// this the caller serializes the state body covering last_seq() and
  /// hands it to commit_checkpoint() on any thread.
  void seal_journal();

  /// Phase 2, any thread: atomically writes `body` as the new snapshot
  /// and deletes the sealed segment it covers. Never touches the active
  /// journal, so control-thread appends proceed concurrently.
  void commit_checkpoint(std::span<const std::byte> body, SimTime now);

  /// Sequence number of the most recently appended record (0 before the
  /// first append); the watermark embedded in snapshots.
  std::uint64_t last_seq() const { return seq_; }
  /// Continues the sequence after recovery.
  void resume_seq(std::uint64_t seq) { seq_ = std::max(seq_, seq); }

  std::uint64_t journal_bytes() const;

  // -- segment tailing (replication read path) ---------------------------

  /// One page of journal frames for a tailing peer.
  struct TailResult {
    /// Raw re-framed journal bytes ([u32 len][u32 crc][payload] per
    /// record) — the wire format; a peer decodes with
    /// journal::scan_frames + the same payload codec recovery uses.
    std::vector<std::byte> frames;
    std::uint64_t first_seq = 0;  ///< lowest seq included (0 when empty)
    std::uint64_t last_seq = 0;   ///< highest seq included (0 when empty)
    std::uint64_t records = 0;    ///< frames included
    /// More matching records existed beyond max_bytes; the peer should
    /// tail again immediately from last_seq instead of sleeping.
    bool truncated = false;
  };

  /// Reads every decodable journal record with seq > `after` from the
  /// sealed segment and the active journal (in append order), stopping
  /// once `max_bytes` of frames are collected. Read-only on the files —
  /// safe to call between appends on the control thread while a
  /// background commit runs; a torn in-progress tail frame is simply
  /// not included yet (the next tail picks it up). Sequence numbers are
  /// contiguous per node, so a gap between `after` and first_seq means
  /// records were compacted into a snapshot (see compacted_through()).
  TailResult tail_segments(std::uint64_t after, std::size_t max_bytes) const;

  /// Highest sequence number whose record has been folded into a
  /// snapshot and removed from the journal files. A tailing peer whose
  /// watermark is below this can never read the missing records here —
  /// it records the gap and resumes from the compaction point (bounded
  /// staleness; in steady state peers poll far faster than checkpoints
  /// compact, so the gap stays empty).
  std::uint64_t compacted_through() const {
    return covered_seq_.load(std::memory_order_acquire);
  }

  struct RecoveredRecord {
    std::uint64_t seq = 0;
    JournalRecord type = JournalRecord::recent_obs;
    TravelObservation obs;
  };

  struct RecoveryResult {
    std::optional<journal::SnapshotData> snapshot;  ///< verified body
    bool snapshot_corrupt = false;  ///< present but failed magic/CRC
    std::vector<RecoveredRecord> records;  ///< decodable journal records
    journal::ReplayStats replay;
    /// Journal frames whose payload failed to decode (counted corrupt
    /// on top of replay.frames_corrupt).
    std::uint64_t undecodable = 0;
  };

  /// Reads whatever state the directory holds. Content corruption never
  /// throws: it is reported in the result (and the caller bumps the
  /// metrics); only environmental I/O failures propagate.
  RecoveryResult recover();

  /// The server snapshot-body magic/version (shared with save/restore).
  static constexpr std::uint32_t kSnapshotMagic = 0x534c4957;  // "WILS"
  static constexpr std::uint32_t kSnapshotVersion = 1;

 private:
  void finish_checkpoint(SimTime now);

  PersistenceConfig config_;
  PersistMetrics metrics_;
  std::unique_ptr<journal::Writer> writer_;  ///< control thread only
  std::uint64_t seq_ = 0;
  /// Highest seq in the sealed segment (captured by seal_journal;
  /// promoted to covered_seq_ when the commit removes the segment).
  std::atomic<std::uint64_t> sealed_through_{0};
  std::atomic<std::uint64_t> covered_seq_{0};  ///< see compacted_through()
  /// Guards the checkpoint-cadence bookkeeping shared between the
  /// control thread (append / should_checkpoint) and a background
  /// committer (commit_checkpoint).
  mutable std::mutex time_mu_;
  std::optional<SimTime> last_checkpoint_time_;
  std::atomic<bool> poisoned_{false};
};

/// Combined fingerprint of the configuration that shapes the persisted
/// state's meaning (slot partition + predictor options). Embedded in
/// snapshots; drift is flagged, not fatal.
std::uint64_t state_fingerprint(const DaySlots& slots,
                                std::uint64_t predictor_fingerprint);

}  // namespace wiloc::core
