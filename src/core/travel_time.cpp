#include "core/travel_time.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/hashing.hpp"

namespace wiloc::core {

TravelTimeStore::TravelTimeStore(DaySlots slots) : slots_(std::move(slots)) {}

std::size_t TravelTimeStore::CellKeyHash::operator()(
    const CellKey& k) const {
  return static_cast<std::size_t>(
      hash_coords(0x77694c6f63ULL, k.edge, k.route, k.slot));
}

TravelTimeStore::CellKey TravelTimeStore::cell_key(roadnet::EdgeId edge,
                                                   roadnet::RouteId route,
                                                   std::size_t slot) {
  return {edge.value(), route.value(), static_cast<std::uint32_t>(slot)};
}

std::uint64_t TravelTimeStore::edge_slot_key(roadnet::EdgeId edge,
                                             std::size_t slot) {
  return (static_cast<std::uint64_t>(edge.value()) << 32) |
         static_cast<std::uint64_t>(slot);
}

void TravelTimeStore::add_history(const TravelObservation& obs) {
  if (finalized_)
    throw StateError("TravelTimeStore: add_history after finalize_history");
  WILOC_EXPECTS(obs.travel_time > 0.0);
  const std::size_t slot = slots_.slot_of(obs.exit_time);
  history_[cell_key(obs.edge, obs.route, slot)].add(obs.travel_time);
  edge_slot_[edge_slot_key(obs.edge, slot)].add(obs.travel_time);
  raw_history_.push_back(obs);
}

void TravelTimeStore::finalize_history() {
  if (finalized_)
    throw StateError("TravelTimeStore: finalize_history called twice");
  for (const TravelObservation& obs : raw_history_) {
    const std::size_t slot = slots_.slot_of(obs.exit_time);
    const auto th = historical_mean(obs.edge, obs.route, slot);
    if (!th.has_value()) continue;
    residuals_[edge_slot_key(obs.edge, slot)].add(obs.travel_time - *th);
  }
  raw_history_.clear();
  raw_history_.shrink_to_fit();
  finalized_ = true;
}

std::optional<double> TravelTimeStore::historical_mean(
    roadnet::EdgeId edge, roadnet::RouteId route, std::size_t slot) const {
  const auto it = history_.find(cell_key(edge, route, slot));
  if (it == history_.end() || it->second.empty()) return std::nullopt;
  return it->second.mean();
}

std::optional<double> TravelTimeStore::historical_mean_any_route(
    roadnet::EdgeId edge, std::size_t slot) const {
  const auto it = edge_slot_.find(edge_slot_key(edge, slot));
  if (it == edge_slot_.end() || it->second.empty()) return std::nullopt;
  return it->second.mean();
}

std::optional<double> TravelTimeStore::residual_mean(roadnet::EdgeId edge,
                                                     std::size_t slot) const {
  const auto it = residuals_.find(edge_slot_key(edge, slot));
  if (it == residuals_.end() || it->second.count() < 2) return std::nullopt;
  return it->second.mean();
}

std::optional<double> TravelTimeStore::residual_stddev(
    roadnet::EdgeId edge, std::size_t slot) const {
  const auto it = residuals_.find(edge_slot_key(edge, slot));
  if (it == residuals_.end() || it->second.count() < 2) return std::nullopt;
  return it->second.stddev();
}

std::size_t TravelTimeStore::history_count(roadnet::EdgeId edge) const {
  std::size_t n = 0;
  for (std::size_t slot = 0; slot < slots_.count(); ++slot) {
    const auto it = edge_slot_.find(edge_slot_key(edge, slot));
    if (it != edge_slot_.end()) n += it->second.count();
  }
  return n;
}

void TravelTimeStore::add_recent(const TravelObservation& obs) {
  WILOC_EXPECTS(obs.travel_time > 0.0);
  auto& ring = recent_[obs.edge];
  // Keep the ring ordered by exit time (observations arrive in order in
  // practice; tolerate slight disorder by insertion).
  auto it = ring.end();
  while (it != ring.begin() && (it - 1)->exit_time > obs.exit_time) --it;
  ring.insert(it, obs);
  constexpr std::size_t kMaxRing = 1024;
  if (ring.size() > kMaxRing) ring.pop_front();
}

std::vector<TravelObservation> TravelTimeStore::recent(
    roadnet::EdgeId edge, SimTime now, double window_s,
    std::size_t max_count) const {
  WILOC_EXPECTS(window_s >= 0.0);
  std::vector<TravelObservation> out;
  const auto it = recent_.find(edge);
  if (it == recent_.end()) return out;
  for (auto r = it->second.rbegin(); r != it->second.rend(); ++r) {
    if (r->exit_time > now) continue;      // future data is invisible
    if (now - r->exit_time > window_s) break;
    out.push_back(*r);
    if (out.size() >= max_count) break;
  }
  return out;
}

void TravelTimeStore::prune_recent(SimTime now, double window_s) {
  for (auto& [edge, ring] : recent_) {
    while (!ring.empty() && now - ring.front().exit_time > window_s)
      ring.pop_front();
  }
}

}  // namespace wiloc::core
