#include "core/travel_time.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/hashing.hpp"

namespace wiloc::core {

TravelTimeStore::TravelTimeStore(DaySlots slots) : slots_(std::move(slots)) {}

std::size_t TravelTimeStore::CellKeyHash::operator()(
    const CellKey& k) const {
  return static_cast<std::size_t>(
      hash_coords(0x77694c6f63ULL, k.edge, k.route, k.slot));
}

TravelTimeStore::CellKey TravelTimeStore::cell_key(roadnet::EdgeId edge,
                                                   roadnet::RouteId route,
                                                   std::size_t slot) {
  return {edge.value(), route.value(), static_cast<std::uint32_t>(slot)};
}

std::uint64_t TravelTimeStore::edge_slot_key(roadnet::EdgeId edge,
                                             std::size_t slot) {
  return (static_cast<std::uint64_t>(edge.value()) << 32) |
         static_cast<std::uint64_t>(slot);
}

void TravelTimeStore::add_history(const TravelObservation& obs) {
  if (finalized_)
    throw StateError("TravelTimeStore: add_history after finalize_history");
  WILOC_EXPECTS(obs.travel_time > 0.0);
  const std::size_t slot = slots_.slot_of(obs.exit_time);
  history_[cell_key(obs.edge, obs.route, slot)].add(obs.travel_time);
  edge_slot_[edge_slot_key(obs.edge, slot)].add(obs.travel_time);
  raw_history_.push_back(obs);
  bump_edge(obs.edge);
}

void TravelTimeStore::finalize_history() {
  if (finalized_)
    throw StateError("TravelTimeStore: finalize_history called twice");
  for (const TravelObservation& obs : raw_history_) {
    const std::size_t slot = slots_.slot_of(obs.exit_time);
    const auto th = historical_mean(obs.edge, obs.route, slot);
    if (!th.has_value()) continue;
    residuals_[edge_slot_key(obs.edge, slot)].add(obs.travel_time - *th);
  }
  raw_history_.clear();
  raw_history_.shrink_to_fit();
  finalized_ = true;
  // Residual statistics just materialized: every edge's classification
  // and correction basis changed at once.
  epoch_floor_ = ++epoch_;
}

std::optional<double> TravelTimeStore::historical_mean(
    roadnet::EdgeId edge, roadnet::RouteId route, std::size_t slot) const {
  const auto it = history_.find(cell_key(edge, route, slot));
  if (it == history_.end() || it->second.empty()) return std::nullopt;
  return it->second.mean();
}

std::optional<double> TravelTimeStore::historical_mean_any_route(
    roadnet::EdgeId edge, std::size_t slot) const {
  const auto it = edge_slot_.find(edge_slot_key(edge, slot));
  if (it == edge_slot_.end() || it->second.empty()) return std::nullopt;
  return it->second.mean();
}

std::optional<double> TravelTimeStore::residual_mean(roadnet::EdgeId edge,
                                                     std::size_t slot) const {
  const auto it = residuals_.find(edge_slot_key(edge, slot));
  if (it == residuals_.end() || it->second.count() < 2) return std::nullopt;
  return it->second.mean();
}

std::optional<double> TravelTimeStore::residual_stddev(
    roadnet::EdgeId edge, std::size_t slot) const {
  const auto it = residuals_.find(edge_slot_key(edge, slot));
  if (it == residuals_.end() || it->second.count() < 2) return std::nullopt;
  return it->second.stddev();
}

std::size_t TravelTimeStore::history_count(roadnet::EdgeId edge) const {
  std::size_t n = 0;
  for (std::size_t slot = 0; slot < slots_.count(); ++slot) {
    const auto it = edge_slot_.find(edge_slot_key(edge, slot));
    if (it != edge_slot_.end()) n += it->second.count();
  }
  return n;
}

bool TravelTimeStore::add_recent(const TravelObservation& obs) {
  WILOC_EXPECTS(obs.travel_time > 0.0);
  auto& ring = recent_[obs.edge];
  // Keep the ring ordered by exit time (observations arrive in order in
  // practice; tolerate slight disorder by insertion).
  auto it = ring.end();
  while (it != ring.begin() && (it - 1)->exit_time > obs.exit_time) --it;
  // Entries sharing this exit time sit immediately before the insertion
  // point; an exact duplicate among them means this traversal is already
  // recorded (journal replay, re-fed stream) and must not count twice.
  for (auto dup = it; dup != ring.begin() &&
                      (dup - 1)->exit_time == obs.exit_time;
       --dup) {
    if (*(dup - 1) == obs) return false;
  }
  ring.insert(it, obs);
  constexpr std::size_t kMaxRing = 1024;
  if (ring.size() > kMaxRing) ring.pop_front();
  bump_edge(obs.edge);
  return true;
}

std::vector<TravelObservation> TravelTimeStore::recent(
    roadnet::EdgeId edge, SimTime now, double window_s,
    std::size_t max_count) const {
  WILOC_EXPECTS(window_s >= 0.0);
  std::vector<TravelObservation> out;
  const auto it = recent_.find(edge);
  if (it == recent_.end()) return out;
  for (auto r = it->second.rbegin(); r != it->second.rend(); ++r) {
    if (r->exit_time > now) continue;      // future data is invisible
    if (now - r->exit_time > window_s) break;
    out.push_back(*r);
    if (out.size() >= max_count) break;
  }
  return out;
}

void TravelTimeStore::prune_recent(SimTime now, double window_s) {
  for (auto& [edge, ring] : recent_) {
    bool dropped = false;
    while (!ring.empty() && now - ring.front().exit_time > window_s) {
      ring.pop_front();
      dropped = true;
    }
    if (dropped) bump_edge(edge);
  }
}

void TravelTimeStore::bump_edge(roadnet::EdgeId edge) {
  edge_epoch_[edge] = ++epoch_;
}

std::uint64_t TravelTimeStore::edge_epoch(roadnet::EdgeId edge) const {
  const auto it = edge_epoch_.find(edge);
  const std::uint64_t own = it != edge_epoch_.end() ? it->second : 0;
  return std::max(own, epoch_floor_);
}

// -- persistence -----------------------------------------------------------

void encode_observation(BinWriter& w, const TravelObservation& obs) {
  w.put_u32(obs.edge.value());
  w.put_u32(obs.route.value());
  w.put_f64(obs.exit_time);
  w.put_f64(obs.travel_time);
}

TravelObservation decode_observation(BinReader& r) {
  TravelObservation obs;
  obs.edge = roadnet::EdgeId(r.get_u32());
  obs.route = roadnet::RouteId(r.get_u32());
  obs.exit_time = r.get_f64();
  obs.travel_time = r.get_f64();
  return obs;
}

namespace {
constexpr std::uint8_t kStoreFormatVersion = 1;
}

void TravelTimeStore::save(BinWriter& w) const {
  w.put_u8(kStoreFormatVersion);
  slots_.encode(w);
  w.put_u8(finalized_ ? 1 : 0);

  w.put_u64(history_.size());
  for (const auto& [key, stats] : history_) {
    w.put_u32(key.edge);
    w.put_u32(key.route);
    w.put_u32(key.slot);
    encode_stats(w, stats);
  }

  w.put_u64(edge_slot_.size());
  for (const auto& [key, stats] : edge_slot_) {
    w.put_u64(key);
    encode_stats(w, stats);
  }

  w.put_u64(residuals_.size());
  for (const auto& [key, stats] : residuals_) {
    w.put_u64(key);
    encode_stats(w, stats);
  }

  w.put_u64(raw_history_.size());
  for (const TravelObservation& obs : raw_history_)
    encode_observation(w, obs);

  w.put_u64(recent_.size());
  for (const auto& [edge, ring] : recent_) {
    w.put_u32(edge.value());
    w.put_u64(ring.size());
    for (const TravelObservation& obs : ring) encode_observation(w, obs);
  }
}

void TravelTimeStore::restore(BinReader& r) {
  const std::uint8_t version = r.get_u8();
  if (version != kStoreFormatVersion)
    throw DecodeError("TravelTimeStore: unknown snapshot format version " +
                      std::to_string(version));
  DaySlots slots = DaySlots::decode(r);
  const bool finalized = r.get_u8() != 0;

  decltype(history_) history;
  const std::uint64_t cells = r.get_u64();
  for (std::uint64_t i = 0; i < cells; ++i) {
    CellKey key{};
    key.edge = r.get_u32();
    key.route = r.get_u32();
    key.slot = r.get_u32();
    history.emplace(key, decode_stats(r));
  }

  decltype(edge_slot_) edge_slot;
  const std::uint64_t es = r.get_u64();
  for (std::uint64_t i = 0; i < es; ++i) {
    const std::uint64_t key = r.get_u64();
    edge_slot.emplace(key, decode_stats(r));
  }

  decltype(residuals_) residuals;
  const std::uint64_t res = r.get_u64();
  for (std::uint64_t i = 0; i < res; ++i) {
    const std::uint64_t key = r.get_u64();
    residuals.emplace(key, decode_stats(r));
  }

  decltype(raw_history_) raw;
  const std::uint64_t raw_n = r.get_u64();
  for (std::uint64_t i = 0; i < raw_n; ++i)
    raw.push_back(decode_observation(r));

  decltype(recent_) recent;
  const std::uint64_t edges = r.get_u64();
  for (std::uint64_t i = 0; i < edges; ++i) {
    const roadnet::EdgeId edge(r.get_u32());
    auto& ring = recent[edge];
    const std::uint64_t n = r.get_u64();
    for (std::uint64_t k = 0; k < n; ++k)
      ring.push_back(decode_observation(r));
  }

  // Everything decoded without throwing: commit atomically.
  slots_ = std::move(slots);
  finalized_ = finalized;
  history_ = std::move(history);
  edge_slot_ = std::move(edge_slot);
  residuals_ = std::move(residuals);
  raw_history_ = std::move(raw);
  recent_ = std::move(recent);
  // Epochs are process-local: the restored state replaces everything, so
  // every edge is "changed" relative to any epoch handed out before.
  edge_epoch_.clear();
  epoch_floor_ = ++epoch_;
}

}  // namespace wiloc::core
