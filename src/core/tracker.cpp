#include "core/tracker.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace wiloc::core {

BusTracker::BusTracker(const roadnet::BusRoute& route,
                       const SvdPositioner& positioner,
                       MobilityFilterParams filter_params)
    : route_(&route), positioner_(&positioner), filter_(filter_params) {}

std::optional<Fix> BusTracker::ingest(const rf::WifiScan& scan) {
  const auto candidates = positioner_->locate(scan);
  const auto fix = filter_.update(scan.time, candidates);
  if (!fix.has_value()) return std::nullopt;

  if (!fixes_.empty()) {
    cross_boundaries(fixes_.back(), *fix);
  } else {
    // First fix: know which edge we are on; its entry time is only
    // trustworthy if the bus is still near the route start.
    current_edge_ = route_->position_at(fix->route_offset).edge_index;
    current_edge_enter_ = fix->time;
    enter_known_ = fix->route_offset <= 30.0 && current_edge_ == 0;
  }
  fixes_.push_back(*fix);
  return fix;
}

void BusTracker::cross_boundaries(const Fix& prev, const Fix& cur) {
  if (cur.route_offset <= prev.route_offset) return;  // no forward motion
  const double gap = cur.route_offset - prev.route_offset;

  // Every edge-end boundary inside (prev, cur] was crossed; interpolate
  // each crossing time at the steady speed between the two fixes.
  std::size_t edge = route_->position_at(prev.route_offset).edge_index;
  while (edge < route_->edges().size()) {
    const double boundary = route_->edge_end_offset(edge);
    if (boundary > cur.route_offset) break;
    const double f = (boundary - prev.route_offset) / gap;
    const SimTime t_cross = prev.time + f * (cur.time - prev.time);

    if (enter_known_ && edge == current_edge_) {
      const double travel = t_cross - current_edge_enter_;
      if (travel > 0.0) {
        segments_.push_back({route_->edges()[edge], route_->id(), t_cross,
                             travel});
      }
    }
    // The crossing is the entry into the next edge.
    current_edge_ = edge + 1;
    current_edge_enter_ = t_cross;
    enter_known_ = true;
    ++edge;
  }
}

std::vector<TravelObservation> BusTracker::drain_segments() {
  std::vector<TravelObservation> out(segments_.begin() +
                                         static_cast<std::ptrdiff_t>(drained_),
                                     segments_.end());
  drained_ = segments_.size();
  return out;
}

std::optional<double> BusTracker::current_offset() const {
  const auto fix = filter_.last_fix();
  if (!fix.has_value()) return std::nullopt;
  return fix->route_offset;
}

}  // namespace wiloc::core
