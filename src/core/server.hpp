// The WiLocator back-end server.
//
// The paper's architecture (Fig. 4) shifts all computation to a server:
// phones only report scans. This facade wires the whole pipeline:
//   scans -> SVD positioning -> mobility filter -> trackers
//         -> segment travel-time observations -> recent store
//   queries: live position, ETA at a stop, traffic map, anomalies.
//
// Offline phase: load historical travel times (weeks of data), finalize.
// Online phase: begin trips, ingest scan reports in time order, query.
#pragma once

#include <memory>
#include <unordered_map>

#include "core/anomaly.hpp"
#include "core/ingest_guard.hpp"
#include "core/predictor.hpp"
#include "core/tracker.hpp"
#include "core/traffic_map.hpp"
#include "svd/route_svd.hpp"

namespace wiloc::core {

struct ServerConfig {
  svd::RouteSvdParams svd;
  PositionerParams positioner;
  MobilityFilterParams filter;
  PredictorOptions predictor;
  TrafficMapParams traffic;
  IngestGuardParams ingest;  ///< per-trip scan-stream guard
  double typical_scan_distance_m = 70.0;  ///< anomaly delta basis
};

class WiLocatorServer {
 public:
  /// Builds one RouteSvd index per route from the AP snapshot. The
  /// routes and model must outlive the server; APs are copied.
  WiLocatorServer(std::vector<const roadnet::BusRoute*> routes,
                  std::vector<rf::AccessPoint> aps,
                  const rf::LogDistanceModel& model, DaySlots slots,
                  ServerConfig config = {});

  /// A route with a caller-supplied positioning index (e.g. built by
  /// svd::SurveyBuilder from crowd scans — no propagation model needed).
  struct RouteIndex {
    const roadnet::BusRoute* route;
    std::unique_ptr<svd::PositioningIndex> index;
  };

  /// Runs on injected indexes; the routes must outlive the server.
  WiLocatorServer(std::vector<RouteIndex> bindings, DaySlots slots,
                  ServerConfig config = {});

  // -- offline training --------------------------------------------------

  /// Feeds one historical observation (ground truth or tracked).
  void load_history(const TravelObservation& obs);
  /// Freezes history and computes residual statistics.
  void finalize_history();

  // -- online operation --------------------------------------------------

  /// Registers a bus trip on a route (route identification is assumed
  /// done — by announcement capture, driver input, or RouteIdentifier).
  void begin_trip(roadnet::TripId trip, roadnet::RouteId route);

  /// True when the trip is registered.
  bool has_trip(roadnet::TripId trip) const;

  /// Processes one scan of a registered trip through the per-trip
  /// IngestGuard; updates the tracker and harvests any completed segment
  /// observations into the recent store. Never throws on malformed
  /// scans, unknown trips, closed trips, or out-of-order input — the
  /// outcome is reported in the IngestResult and in the health counters.
  IngestResult ingest(roadnet::TripId trip, const rf::WifiScan& scan);

  /// Releases the trip's reorder buffer into its tracker (e.g. before a
  /// query that must see every scan submitted so far).
  void flush_trip(roadnet::TripId trip);

  /// Closes a trip (its reorder buffer is flushed; the tracker is kept
  /// for post-hoc queries).
  void end_trip(roadnet::TripId trip);

  // -- queries -----------------------------------------------------------

  /// Current route offset of a trip, if tracking has a fix.
  std::optional<double> position(roadnet::TripId trip) const;

  /// Predicted arrival time at the stop (Eq. 9). nullopt without a fix.
  std::optional<SimTime> eta(roadnet::TripId trip, std::size_t stop_index,
                             SimTime now) const;

  /// Traffic map over every edge used by any registered route.
  TrafficMap traffic_map(SimTime now) const;

  /// Anomaly windows detected on the trip's trajectory so far.
  std::vector<Anomaly> anomalies(roadnet::TripId trip) const;

  /// Ingest health counters of one trip.
  const IngestStats& trip_ingest_stats(roadnet::TripId trip) const;

  /// Server-wide ingest health: every per-trip counter plus the
  /// unknown-trip / closed-trip rejections that never reached a guard.
  /// accounted() holds on the aggregate at all times.
  IngestStats ingest_stats() const;

  // -- component access (benches, tests) ---------------------------------

  const svd::PositioningIndex& index_for(roadnet::RouteId route) const;
  const BusTracker& tracker(roadnet::TripId trip) const;
  TravelTimeStore& store() { return store_; }
  const TravelTimeStore& store() const { return store_; }
  const ArrivalPredictor& predictor() const { return predictor_; }
  const roadnet::BusRoute& route(roadnet::RouteId id) const;

 private:
  struct RouteRuntime {
    const roadnet::BusRoute* route;
    std::unique_ptr<svd::PositioningIndex> index;
    std::unique_ptr<SvdPositioner> positioner;
  };

  void adopt_route(const roadnet::BusRoute& route,
                   std::unique_ptr<svd::PositioningIndex> index);
  struct TripRuntime {
    roadnet::RouteId route;
    std::unique_ptr<BusTracker> tracker;
    std::unique_ptr<IngestGuard> guard;
    bool active = true;
  };

  const RouteRuntime& runtime_for(roadnet::RouteId route) const;
  void harvest_segments(TripRuntime& tr);

  ServerConfig config_;
  std::unordered_map<roadnet::RouteId, RouteRuntime> routes_;
  std::unordered_map<roadnet::TripId, TripRuntime> trips_;
  TravelTimeStore store_;
  ArrivalPredictor predictor_;
  TrafficMapBuilder traffic_builder_;
  IngestStats orphan_stats_;  ///< unknown-/closed-trip rejections
};

}  // namespace wiloc::core
