// The WiLocator back-end server.
//
// The paper's architecture (Fig. 4) shifts all computation to a server:
// phones only report scans. This facade wires the whole pipeline:
//   scans -> SVD positioning -> mobility filter -> trackers
//         -> segment travel-time observations -> recent store
//   queries: live position, ETA at a stop, traffic map, anomalies.
//
// Offline phase: load historical travel times (weeks of data), finalize.
// Online phase: begin trips, ingest scan reports, query.
//
// Scan processing is delegated to a sharded IngestEngine. With the
// default config (engine.workers == 0) every call runs inline on the
// caller thread — the serial pipeline, byte-identical to the historical
// single-threaded server. With engine.workers >= 1 scans are processed
// by a worker pool (trips hash to shards; per-trip order is preserved)
// and ingest_batch() becomes the high-throughput entry point. Queries
// are safe from one control thread concurrent with the workers; after
// drain() the state is identical to the serial run of the same
// submission sequence.
#pragma once

#include <memory>
#include <span>
#include <unordered_map>

#include "core/anomaly.hpp"
#include "core/ingest_engine.hpp"
#include "core/predictor.hpp"
#include "core/tracker.hpp"
#include "core/traffic_map.hpp"
#include "svd/route_svd.hpp"
#include "util/obs.hpp"

namespace wiloc::core {

struct ServerConfig {
  svd::RouteSvdParams svd;
  PositionerParams positioner;
  MobilityFilterParams filter;
  PredictorOptions predictor;
  TrafficMapParams traffic;
  IngestGuardParams ingest;  ///< per-trip scan-stream guard
  IngestEngineParams engine; ///< sharding / worker pool (0 = serial)
  double typical_scan_distance_m = 70.0;  ///< anomaly delta basis
  bool tracing = false;  ///< record per-scan trace spans (bounded ring)
};

class WiLocatorServer {
 public:
  /// Builds one RouteSvd index per route from the AP snapshot. The
  /// routes and model must outlive the server; APs are copied.
  WiLocatorServer(std::vector<const roadnet::BusRoute*> routes,
                  std::vector<rf::AccessPoint> aps,
                  const rf::LogDistanceModel& model, DaySlots slots,
                  ServerConfig config = {});

  /// A route with a caller-supplied positioning index (e.g. built by
  /// svd::SurveyBuilder from crowd scans — no propagation model needed).
  struct RouteIndex {
    const roadnet::BusRoute* route;
    std::unique_ptr<svd::PositioningIndex> index;
  };

  /// Runs on injected indexes; the routes must outlive the server.
  WiLocatorServer(std::vector<RouteIndex> bindings, DaySlots slots,
                  ServerConfig config = {});

  // -- offline training --------------------------------------------------

  /// Feeds one historical observation (ground truth or tracked).
  void load_history(const TravelObservation& obs);
  /// Freezes history and computes residual statistics.
  void finalize_history();

  // -- online operation --------------------------------------------------

  /// Registers a bus trip on a route (route identification is assumed
  /// done — by announcement capture, driver input, or RouteIdentifier).
  void begin_trip(roadnet::TripId trip, roadnet::RouteId route);

  /// True when the trip is registered.
  bool has_trip(roadnet::TripId trip) const;

  /// Processes one scan of a registered trip through the per-trip
  /// IngestGuard; updates the tracker and harvests any completed segment
  /// observations into the recent store. Never throws on malformed
  /// scans, unknown trips, closed trips, or out-of-order input — the
  /// outcome is reported in the IngestResult and in the health counters.
  /// In threaded mode the call waits for the scan to be processed (it is
  /// ordered after everything already queued on the trip's shard).
  IngestResult ingest(roadnet::TripId trip, const rf::WifiScan& scan);

  /// High-throughput entry point: enqueues a batch of scans across the
  /// engine's shards and returns without waiting for processing. Per-
  /// scan outcomes land in the IngestStats; the batch result reports
  /// backpressure drops (only possible when engine.block_on_full is
  /// false). In serial mode the batch is processed inline.
  BatchIngestResult ingest_batch(std::span<const ScanSubmission> batch);

  /// Blocks until every submitted scan has been processed. After this,
  /// state is byte-identical to a serial server fed the same sequence.
  void drain();

  /// Releases the trip's reorder buffer into its tracker (e.g. before a
  /// query that must see every scan submitted so far).
  void flush_trip(roadnet::TripId trip);

  /// Closes a trip (its reorder buffer is flushed; the tracker is kept
  /// for post-hoc queries).
  void end_trip(roadnet::TripId trip);

  // -- queries -----------------------------------------------------------

  /// Current route offset of a trip, if tracking has a fix.
  std::optional<double> position(roadnet::TripId trip) const;

  /// Predicted arrival time at the stop (Eq. 9). nullopt without a fix.
  std::optional<SimTime> eta(roadnet::TripId trip, std::size_t stop_index,
                             SimTime now) const;

  /// Traffic map over every edge used by any registered route.
  TrafficMap traffic_map(SimTime now) const;

  /// Anomaly windows detected on the trip's trajectory so far.
  std::vector<Anomaly> anomalies(roadnet::TripId trip) const;

  /// Ingest health counters of one trip (snapshot copy).
  IngestStats trip_ingest_stats(roadnet::TripId trip) const;

  /// Server-wide ingest health: every per-trip counter plus the
  /// unknown-trip / closed-trip rejections that never reached a guard.
  /// accounted() holds on the aggregate whenever the engine is idle.
  IngestStats ingest_stats() const;

  // -- observability -----------------------------------------------------

  /// Point-in-time copy of every metric the pipeline maintains
  /// (ingest.*, engine.*, locate.*, predictor.*, traffic.*, server.*).
  obs::Snapshot metrics_snapshot() const { return registry_.snapshot(); }

  /// The live registry (e.g. to wire an obs::Reporter, or to register
  /// application-level metrics alongside the pipeline's).
  obs::Registry& metrics_registry() { return registry_; }

  /// Drains the trace ring (empty unless config.tracing). Each scan's
  /// events share its submission sequence number as the span id.
  std::vector<obs::TraceEvent> take_trace_events() { return tracer_.take(); }

  /// Toggles span recording at runtime (initially ServerConfig::tracing).
  void set_tracing(bool on) { tracer_.set_enabled(on); }

  // -- component access (benches, tests) ---------------------------------

  const svd::PositioningIndex& index_for(roadnet::RouteId route) const;
  /// Requires a drained engine in threaded mode.
  const BusTracker& tracker(roadnet::TripId trip) const;
  TravelTimeStore& store() {
    publish_pending();
    return store_;
  }
  const TravelTimeStore& store() const {
    publish_pending();
    return store_;
  }
  const ArrivalPredictor& predictor() const { return predictor_; }
  const roadnet::BusRoute& route(roadnet::RouteId id) const;
  const IngestEngine& engine() const { return *engine_; }
  IngestEngine& engine() { return *engine_; }

 private:
  struct RouteRuntime {
    const roadnet::BusRoute* route;
    std::unique_ptr<svd::PositioningIndex> index;
    std::unique_ptr<SvdPositioner> positioner;
  };

  void adopt_route(const roadnet::BusRoute& route,
                   std::unique_ptr<svd::PositioningIndex> index);
  const RouteRuntime& runtime_for(roadnet::RouteId route) const;
  /// Moves order-finalized segment observations from the engine into the
  /// recent store (serial submission order). Cheap when nothing is
  /// pending. const because read-side queries trigger it lazily.
  void publish_pending() const;
  /// Resolves the prediction-side metric handles (both constructors).
  void init_obs();

  ServerConfig config_;
  std::unordered_map<roadnet::RouteId, RouteRuntime> routes_;
  // Declared before engine_: the engine (and everything downstream)
  // holds handles into the registry/tracer, so they must outlive it.
  obs::Registry registry_;
  obs::Tracer tracer_;
  std::unique_ptr<IngestEngine> engine_;
  mutable TravelTimeStore store_;
  ArrivalPredictor predictor_;
  TrafficMapBuilder traffic_builder_;
  obs::Counter* obs_published_ = nullptr;  ///< server.observations_published
};

}  // namespace wiloc::core
