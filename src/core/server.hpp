// The WiLocator back-end server.
//
// The paper's architecture (Fig. 4) shifts all computation to a server:
// phones only report scans. This facade wires the whole pipeline:
//   scans -> SVD positioning -> mobility filter -> trackers
//         -> segment travel-time observations -> recent store
//   queries: live position, ETA at a stop, traffic map, anomalies.
//
// Offline phase: load historical travel times (weeks of data), finalize.
// Online phase: begin trips, ingest scan reports, query.
//
// Scan processing is delegated to a sharded IngestEngine. With the
// default config (engine.workers == 0) every call runs inline on the
// caller thread — the serial pipeline, byte-identical to the historical
// single-threaded server. With engine.workers >= 1 scans are processed
// by a worker pool (trips hash to shards; per-trip order is preserved)
// and ingest_batch() becomes the high-throughput entry point. Queries
// are safe from one control thread concurrent with the workers; after
// drain() the state is identical to the serial run of the same
// submission sequence.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "core/anomaly.hpp"
#include "core/arrival_table.hpp"
#include "core/ingest_engine.hpp"
#include "core/persist.hpp"
#include "core/predictor.hpp"
#include "core/tracker.hpp"
#include "core/traffic_map.hpp"
#include "svd/route_svd.hpp"
#include "util/obs.hpp"

namespace wiloc::core {

struct ServerConfig {
  svd::RouteSvdParams svd;
  PositionerParams positioner;
  MobilityFilterParams filter;
  PredictorOptions predictor;
  TrafficMapParams traffic;
  IngestGuardParams ingest;  ///< per-trip scan-stream guard
  IngestEngineParams engine; ///< sharding / worker pool (0 = serial)
  ArrivalTableParams arrival; ///< materialized read-path snapshot
  PersistenceConfig persist; ///< durable state (disabled by default)
  double typical_scan_distance_m = 70.0;  ///< anomaly delta basis
  bool tracing = false;  ///< record per-scan trace spans (bounded ring)
};

class WiLocatorServer {
 public:
  /// Builds one RouteSvd index per route from the AP snapshot. The
  /// routes and model must outlive the server; APs are copied.
  WiLocatorServer(std::vector<const roadnet::BusRoute*> routes,
                  std::vector<rf::AccessPoint> aps,
                  const rf::LogDistanceModel& model, DaySlots slots,
                  ServerConfig config = {});

  /// A route with a caller-supplied positioning index (e.g. built by
  /// svd::SurveyBuilder from crowd scans — no propagation model needed).
  struct RouteIndex {
    const roadnet::BusRoute* route;
    std::unique_ptr<svd::PositioningIndex> index;
  };

  /// Runs on injected indexes; the routes must outlive the server.
  WiLocatorServer(std::vector<RouteIndex> bindings, DaySlots slots,
                  ServerConfig config = {});

  /// Graceful shutdown: drains the engine, publishes pending
  /// observations, and (when persistence is enabled and not poisoned by
  /// a failed write) writes a final checkpoint. Also flushes a final
  /// snapshot through any attached obs::Reporter. Never throws.
  ~WiLocatorServer();

  WiLocatorServer(const WiLocatorServer&) = delete;
  WiLocatorServer& operator=(const WiLocatorServer&) = delete;

  // -- offline training --------------------------------------------------

  /// Feeds one historical observation (ground truth or tracked).
  /// Idempotent: an observation identical to one already loaded (same
  /// edge, route, exit time and travel time) is dropped — re-feeding a
  /// training file, or replaying a journal over a restored snapshot,
  /// cannot double-count (server.history_duplicates counts the drops).
  void load_history(const TravelObservation& obs);
  /// Freezes history and computes residual statistics. Checkpoints when
  /// persistence is enabled (the finalized flag is part of the state).
  void finalize_history();

  // -- online operation --------------------------------------------------

  /// Registers a bus trip on a route (route identification is assumed
  /// done — by announcement capture, driver input, or RouteIdentifier).
  void begin_trip(roadnet::TripId trip, roadnet::RouteId route);

  /// True when the trip is registered.
  bool has_trip(roadnet::TripId trip) const;

  /// Processes one scan of a registered trip through the per-trip
  /// IngestGuard; updates the tracker and harvests any completed segment
  /// observations into the recent store. Never throws on malformed
  /// scans, unknown trips, closed trips, or out-of-order input — the
  /// outcome is reported in the IngestResult and in the health counters.
  /// In threaded mode the call waits for the scan to be processed (it is
  /// ordered after everything already queued on the trip's shard).
  IngestResult ingest(roadnet::TripId trip, const rf::WifiScan& scan);

  /// High-throughput entry point: enqueues a batch of scans across the
  /// engine's shards and returns without waiting for processing. Per-
  /// scan outcomes land in the IngestStats; the batch result reports
  /// backpressure drops (only possible when engine.block_on_full is
  /// false). In serial mode the batch is processed inline.
  BatchIngestResult ingest_batch(std::span<const ScanSubmission> batch);

  /// Blocks until every submitted scan has been processed. After this,
  /// state is byte-identical to a serial server fed the same sequence.
  void drain();

  /// Releases the trip's reorder buffer into its tracker (e.g. before a
  /// query that must see every scan submitted so far).
  void flush_trip(roadnet::TripId trip);

  /// Closes a trip (its reorder buffer is flushed; the tracker is kept
  /// for post-hoc queries).
  void end_trip(roadnet::TripId trip);

  // -- queries -----------------------------------------------------------

  /// Current route offset of a trip, if tracking has a fix.
  std::optional<double> position(roadnet::TripId trip) const;

  /// Predicted arrival time at the stop (Eq. 9). nullopt without a fix.
  std::optional<SimTime> eta(roadnet::TripId trip, std::size_t stop_index,
                             SimTime now) const;

  /// Traffic map over every edge used by any registered route.
  TrafficMap traffic_map(SimTime now) const;

  /// The current materialized read-path snapshot (see ArrivalTable):
  /// pre-encoded arrival + traffic-map answers, refreshed by the
  /// control side whenever learned state or positions move. Lock-free
  /// (one atomic load) — safe from any thread, nullptr before the
  /// first post-finalize refresh or when ServerConfig::arrival is
  /// disabled.
  std::shared_ptr<const ArrivalSnapshot> arrival_snapshot() const {
    return arrival_table_.snapshot();
  }

  /// Forces any pending arrival refresh through, ignoring the
  /// coalescing window. The service's checkpoint poll calls this so
  /// snapshot staleness stays bounded even when ingest goes quiet.
  void flush_arrivals() const;

  /// Anomaly windows detected on the trip's trajectory so far.
  std::vector<Anomaly> anomalies(roadnet::TripId trip) const;

  /// Ingest health counters of one trip (snapshot copy).
  IngestStats trip_ingest_stats(roadnet::TripId trip) const;

  /// Server-wide ingest health: every per-trip counter plus the
  /// unknown-trip / closed-trip rejections that never reached a guard.
  /// accounted() holds on the aggregate whenever the engine is idle.
  IngestStats ingest_stats() const;

  // -- replication (cluster peers) ---------------------------------------

  /// Applies one journal record tailed from a peer node, idempotently:
  /// a history observation passes the ObservationKey dedup (and is
  /// dropped once history is finalized), a recent observation passes
  /// the store's exact-duplicate rejection — so overlapped replication
  /// pages and re-tails from zero converge instead of double-counting.
  /// Replicated records are NOT re-journaled locally (they carry the
  /// origin node's sequence numbers and would echo between peers);
  /// they become locally durable through this node's own snapshots,
  /// which serialize the whole store. Returns true when the record was
  /// genuinely new here (server.replicated_applied; duplicates land in
  /// server.replicated_duplicates).
  bool apply_replicated(JournalRecord type, const TravelObservation& obs);

  // -- durable state (ServerConfig::persist) -----------------------------

  /// True when construction recovered learned state from the persistence
  /// directory (snapshot and/or journal records were applied).
  bool recovered() const { return recovered_; }

  /// Publishes pending observations, then forces a checkpoint now:
  /// atomically snapshots the learned state and truncates the journal.
  /// Requires persistence to be enabled. Synchronous (caller-thread
  /// I/O); a serving front-end uses the prepare/commit split below.
  void checkpoint();

  /// A serialized checkpoint waiting for its (possibly off-thread)
  /// snapshot write. Obtained from prepare_checkpoint().
  struct PreparedCheckpoint {
    std::vector<std::byte> body;
    SimTime at = 0.0;
    bool valid = false;
  };

  /// True when the periodic/size checkpoint trigger has fired — the
  /// background checkpointer polls this under the same lock that
  /// serializes control-thread calls.
  bool checkpoint_due() const;

  /// Phase 1 (control thread): publishes pending observations, seals
  /// the journal and serializes the learned state. Cheap: in-memory
  /// serialization plus one rename. Returns an invalid checkpoint when
  /// persistence is disabled or poisoned.
  PreparedCheckpoint prepare_checkpoint();

  /// Phase 2 (any thread): writes the prepared snapshot to disk and
  /// drops the sealed journal segment it covers. Safe to run
  /// concurrently with control-thread ingest/queries — it never touches
  /// the active journal or the learned state.
  void commit_prepared(PreparedCheckpoint&& prepared);

  /// When disabled, publish_pending() stops taking interval/size
  /// checkpoints inline on the control thread — a background
  /// checkpointer (net::WiLocatorService) owns the cadence instead.
  void set_inline_checkpoints(bool enabled) {
    inline_checkpoints_ = enabled;
  }

  /// Sim-time of the newest event the server has seen (scan
  /// observation exit or recovered record); nullopt before any.
  std::optional<SimTime> last_event_time() const {
    return has_event_.load(std::memory_order_acquire)
               ? std::optional<SimTime>(
                     last_event_time_.load(std::memory_order_relaxed))
               : std::nullopt;
  }

  /// The persistence manager, or nullptr when disabled (tests, benches).
  const StatePersistence* persistence() const { return persist_.get(); }

  /// Serializes the full learned state (store + traffic-map cache) to an
  /// arbitrary snapshot file — works with persistence disabled (e.g. to
  /// ship a warmed-up state to another server).
  void save_snapshot(const std::string& path) const;

  /// Restores state written by save_snapshot / checkpoint. Returns false
  /// when the file is missing; throws DecodeError when it is corrupt.
  bool restore_snapshot(const std::string& path);

  /// The traffic map cached by the last build() — survives restarts via
  /// checkpoints, so a freshly recovered server can serve a (stale but
  /// honestly timestamped) map before any new observation arrives.
  const std::optional<TrafficMap>& last_traffic_map() const {
    return traffic_builder_.last_map();
  }

  /// Attaches a reporter whose final window is flushed when the server
  /// shuts down (the reporter must outlive the server).
  void attach_reporter(obs::Reporter* reporter) { reporter_ = reporter; }

  // -- observability -----------------------------------------------------

  /// Point-in-time copy of every metric the pipeline maintains
  /// (ingest.*, engine.*, locate.*, predictor.*, traffic.*, server.*).
  obs::Snapshot metrics_snapshot() const { return registry_.snapshot(); }

  /// The live registry (e.g. to wire an obs::Reporter, or to register
  /// application-level metrics alongside the pipeline's).
  obs::Registry& metrics_registry() { return registry_; }

  /// Drains the trace ring (empty unless config.tracing). Each scan's
  /// events share its submission sequence number as the span id.
  std::vector<obs::TraceEvent> take_trace_events() { return tracer_.take(); }

  /// Toggles span recording at runtime (initially ServerConfig::tracing).
  void set_tracing(bool on) { tracer_.set_enabled(on); }

  // -- component access (benches, tests) ---------------------------------

  const svd::PositioningIndex& index_for(roadnet::RouteId route) const;
  /// Requires a drained engine in threaded mode.
  const BusTracker& tracker(roadnet::TripId trip) const;
  TravelTimeStore& store() {
    publish_pending();
    return store_;
  }
  const TravelTimeStore& store() const {
    publish_pending();
    return store_;
  }
  const ArrivalPredictor& predictor() const { return predictor_; }
  const roadnet::BusRoute& route(roadnet::RouteId id) const;
  const IngestEngine& engine() const { return *engine_; }
  IngestEngine& engine() { return *engine_; }

 private:
  struct RouteRuntime {
    const roadnet::BusRoute* route;
    std::unique_ptr<svd::PositioningIndex> index;
    std::unique_ptr<SvdPositioner> positioner;
  };

  void adopt_route(const roadnet::BusRoute& route,
                   std::unique_ptr<svd::PositioningIndex> index);
  const RouteRuntime& runtime_for(roadnet::RouteId route) const;
  /// Moves order-finalized segment observations from the engine into the
  /// recent store (serial submission order). Cheap when nothing is
  /// pending. const because read-side queries trigger it lazily. This is
  /// also where journaling and interval checkpoints happen — always on
  /// the calling (control) thread, never on the engine's shard workers.
  void publish_pending() const;
  /// Resolves the prediction-side metric handles (both constructors).
  void init_obs();
  /// Computes the all-routes edge union and hands it to the arrival
  /// table (after route adoption, both constructors).
  void init_arrival_table();
  /// Opens the state directory and (when recover_on_start) replays it.
  void init_persistence();
  /// Applies snapshot + post-watermark journal records; sets recovered_.
  void recover_state();
  /// Serializes [fingerprint][watermark][store][traffic cache].
  std::vector<std::byte> snapshot_body() const;
  /// Inverse of snapshot_body(); returns the embedded journal watermark.
  std::uint64_t apply_snapshot_body(BinReader& r);
  /// Writes a checkpoint from the current state (persistence enabled).
  void do_checkpoint() const;
  /// Interval/size-triggered checkpoint; cheap no-op when not due.
  void maybe_checkpoint() const;
  /// Advances the shutdown/reporting clock to the given event time.
  void note_event(SimTime t) const;
  /// Refreshes the materialized arrival table when ingest activity or
  /// the store epoch moved since the last refresh (cheap no-op else).
  void maybe_refresh_arrivals() const;

  ServerConfig config_;
  std::unordered_map<roadnet::RouteId, RouteRuntime> routes_;
  // Declared before engine_: the engine (and everything downstream)
  // holds handles into the registry/tracer, so they must outlive it.
  obs::Registry registry_;
  obs::Tracer tracer_;
  std::unique_ptr<IngestEngine> engine_;
  mutable TravelTimeStore store_;
  ArrivalPredictor predictor_;
  TrafficMapBuilder traffic_builder_;
  mutable ArrivalTable arrival_table_;
  /// Union of every registered route's edges, sorted + deduped once
  /// (the traffic-map domain; routes are fixed at construction).
  std::vector<roadnet::EdgeId> all_edges_;
  /// Bumped by every ingest-side call that can move a position, so
  /// maybe_refresh_arrivals() skips the per-trip position poll when
  /// nothing could have changed.
  mutable std::uint64_t ingest_activity_ = 0;
  mutable std::uint64_t refreshed_activity_ = ~0ull;
  mutable std::uint64_t refreshed_epoch_ = ~0ull;
  /// Wall time of the last arrival refresh; gates the coalescing
  /// window (ArrivalTableParams::min_refresh_wall_s).
  mutable double arrival_refresh_wall_ = -1.0e300;
  std::unique_ptr<StatePersistence> persist_;  ///< nullptr when disabled
  /// Exact identities of loaded history observations (cleared at
  /// finalize; rebuilt from raw history on restore).
  std::unordered_set<ObservationKey, ObservationKey::Hash> history_seen_;
  std::uint64_t config_fingerprint_ = 0;
  bool recovered_ = false;
  bool inline_checkpoints_ = true;
  obs::Reporter* reporter_ = nullptr;  ///< final-flushed on destruction
  // Written only by note_event() (callers already serialized by the
  // service lock); read lock-free by the reporter thread through
  // last_event_time(), hence atomic.
  mutable std::atomic<SimTime> last_event_time_{0.0};
  mutable std::atomic<bool> has_event_{false};
  obs::Counter* obs_published_ = nullptr;  ///< server.observations_published
  obs::Counter* history_dups_ = nullptr;   ///< server.history_duplicates
  obs::Counter* repl_applied_ = nullptr;   ///< server.replicated_applied
  obs::Counter* repl_dups_ = nullptr;      ///< server.replicated_duplicates
  PersistMetrics persist_metrics_;
};

}  // namespace wiloc::core
