#include "core/ingest_guard.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/contracts.hpp"

namespace wiloc::core {

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::none: return "none";
    case RejectReason::unknown_trip: return "unknown_trip";
    case RejectReason::closed_trip: return "closed_trip";
    case RejectReason::invalid_time: return "invalid_time";
    case RejectReason::empty_scan: return "empty_scan";
    case RejectReason::no_usable_readings: return "no_usable_readings";
    case RejectReason::stale_scan: return "stale_scan";
    case RejectReason::duplicate_scan: return "duplicate_scan";
    case RejectReason::rate_limited: return "rate_limited";
  }
  return "?";
}

std::uint64_t IngestStats::rejected_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : rejected_by_reason) total += n;
  return total;
}

IngestStats& IngestStats::operator+=(const IngestStats& other) {
  submitted += other.submitted;
  accepted += other.accepted;
  deferred += other.deferred;
  reordered += other.reordered;
  fixes += other.fixes;
  degraded_fixes += other.degraded_fixes;
  for (std::size_t i = 0; i < rejected_by_reason.size(); ++i)
    rejected_by_reason[i] += other.rejected_by_reason[i];
  readings_dropped_invalid += other.readings_dropped_invalid;
  readings_dropped_weak += other.readings_dropped_weak;
  readings_dropped_duplicate += other.readings_dropped_duplicate;
  readings_dropped_unknown_ap += other.readings_dropped_unknown_ap;
  return *this;
}

GuardMetrics GuardMetrics::registered(obs::Registry& registry) {
  GuardMetrics m;
  m.submitted = &registry.counter("ingest.submitted");
  m.accepted = &registry.counter("ingest.accepted");
  m.deferred = &registry.counter("ingest.deferred");
  m.reordered = &registry.counter("ingest.reordered");
  m.fixes = &registry.counter("ingest.fixes");
  m.degraded_fixes = &registry.counter("ingest.degraded_fixes");
  for (std::size_t i = 0; i < kRejectReasonCount; ++i)
    m.rejected[i] = &registry.counter(
        std::string("ingest.rejected.") +
        to_string(static_cast<RejectReason>(i)));
  m.readings_dropped_invalid =
      &registry.counter("ingest.readings_dropped.invalid");
  m.readings_dropped_weak = &registry.counter("ingest.readings_dropped.weak");
  m.readings_dropped_duplicate =
      &registry.counter("ingest.readings_dropped.duplicate");
  m.readings_dropped_unknown_ap =
      &registry.counter("ingest.readings_dropped.unknown_ap");
  return m;
}

IngestGuard::IngestGuard(BusTracker& tracker,
                         const svd::PositioningIndex& index,
                         IngestGuardParams params, const GuardMetrics* metrics)
    : tracker_(&tracker),
      index_(&index),
      params_(params),
      metrics_(metrics) {
  WILOC_EXPECTS(params_.min_rssi_dbm < params_.max_rssi_dbm);
  WILOC_EXPECTS(params_.min_scan_spacing_s >= 0.0);
}

void IngestGuard::count_reject(RejectReason reason) {
  ++stats_.rejected_by_reason[static_cast<std::size_t>(reason)];
  if (metrics_ != nullptr) metrics_->count_rejected(reason);
}

RejectReason IngestGuard::sanitize(rf::WifiScan& scan) {
  IngestStats& stats = stats_;

  if (!std::isfinite(scan.time)) return RejectReason::invalid_time;

  // Something to coast from: a dead-reckoned (degraded) fix is still
  // possible even when the scan itself carries no positioning signal.
  const bool coastable =
      tracker_->current_offset().has_value() || !buffer_.empty();

  if (scan.readings.empty())
    return coastable ? RejectReason::none : RejectReason::empty_scan;

  // Reading-level sanitization: keep the strongest valid reading per AP.
  std::unordered_map<rf::ApId, double> best;
  best.reserve(scan.readings.size());
  for (const rf::ApReading& r : scan.readings) {
    if (!std::isfinite(r.rssi_dbm) || r.rssi_dbm < params_.min_rssi_dbm ||
        r.rssi_dbm > params_.max_rssi_dbm) {
      ++stats.readings_dropped_invalid;
      if (metrics_ && metrics_->readings_dropped_invalid)
        metrics_->readings_dropped_invalid->inc();
      continue;
    }
    if (r.rssi_dbm < params_.sensitivity_floor_dbm) {
      ++stats.readings_dropped_weak;
      if (metrics_ && metrics_->readings_dropped_weak)
        metrics_->readings_dropped_weak->inc();
      continue;
    }
    if (params_.filter_unknown_aps && !index_->knows_ap(r.ap)) {
      ++stats.readings_dropped_unknown_ap;
      if (metrics_ && metrics_->readings_dropped_unknown_ap)
        metrics_->readings_dropped_unknown_ap->inc();
      continue;
    }
    const auto [it, inserted] = best.emplace(r.ap, r.rssi_dbm);
    if (!inserted) {
      ++stats.readings_dropped_duplicate;
      if (metrics_ && metrics_->readings_dropped_duplicate)
        metrics_->readings_dropped_duplicate->inc();
      it->second = std::max(it->second, r.rssi_dbm);
    }
  }

  if (best.size() != scan.readings.size()) {
    scan.readings.clear();
    scan.readings.reserve(best.size());
    for (const auto& [ap, rssi] : best) scan.readings.push_back({ap, rssi});
    std::sort(scan.readings.begin(), scan.readings.end(),
              [](const rf::ApReading& a, const rf::ApReading& b) {
                if (a.rssi_dbm != b.rssi_dbm)
                  return a.rssi_dbm > b.rssi_dbm;
                return a.ap < b.ap;
              });
    if (scan.readings.empty() && !coastable)
      return RejectReason::no_usable_readings;
  }
  return RejectReason::none;
}

IngestResult IngestGuard::submit(const rf::WifiScan& input) {
  ++stats_.submitted;
  if (metrics_ && metrics_->submitted) metrics_->submitted->inc();

  rf::WifiScan scan = input;
  if (const RejectReason why = sanitize(scan); why != RejectReason::none) {
    count_reject(why);
    return {IngestStatus::rejected, why, std::nullopt, 0};
  }

  // Ordering: everything at or before the watermark is gone for good.
  if (any_released_) {
    if (scan.time == watermark_) {
      count_reject(RejectReason::duplicate_scan);
      return {IngestStatus::rejected, RejectReason::duplicate_scan,
              std::nullopt, 0};
    }
    if (scan.time < watermark_) {
      count_reject(RejectReason::stale_scan);
      return {IngestStatus::rejected, RejectReason::stale_scan,
              std::nullopt, 0};
    }
  }

  const auto pos = std::upper_bound(
      buffer_.begin(), buffer_.end(), scan.time,
      [](double t, const Pending& p) { return t < p.scan.time; });
  if (pos != buffer_.begin() && std::prev(pos)->scan.time == scan.time) {
    count_reject(RejectReason::duplicate_scan);
    return {IngestStatus::rejected, RejectReason::duplicate_scan,
            std::nullopt, 0};
  }
  if (pos != buffer_.end()) {
    ++stats_.reordered;  // arrived out of order
    if (metrics_ && metrics_->reordered) metrics_->reordered->inc();
  }

  const std::uint64_t my_seq = next_seq_++;
  buffer_.insert(pos, {std::move(scan), my_seq});
  ++stats_.deferred;
  if (metrics_ && metrics_->deferred) metrics_->deferred->inc();

  IngestResult result{IngestStatus::deferred, RejectReason::none,
                      std::nullopt, 0};
  while (buffer_.size() > params_.reorder_depth) {
    const std::uint64_t front_seq = buffer_.front().seq;
    const auto fix = release_front();
    if (last_release_outcome_ == RejectReason::none) ++result.released;
    if (fix.has_value()) result.fix = fix;
    if (front_seq == my_seq) {
      result.status = last_release_outcome_ == RejectReason::none
                          ? IngestStatus::accepted
                          : IngestStatus::rejected;
      result.reason = last_release_outcome_;
    }
  }
  return result;
}

std::optional<Fix> IngestGuard::release_front() {
  Pending pending = std::move(buffer_.front());
  buffer_.erase(buffer_.begin());
  --stats_.deferred;

  if (any_released_ &&
      pending.scan.time - watermark_ < params_.min_scan_spacing_s) {
    count_reject(RejectReason::rate_limited);
    last_release_outcome_ = RejectReason::rate_limited;
    return std::nullopt;
  }

  watermark_ = pending.scan.time;
  any_released_ = true;
  ++stats_.accepted;
  if (metrics_ && metrics_->accepted) metrics_->accepted->inc();
  last_release_outcome_ = RejectReason::none;

  const auto fix = tracker_->ingest(pending.scan);
  if (fix.has_value()) {
    ++stats_.fixes;
    if (metrics_ && metrics_->fixes) metrics_->fixes->inc();
    if (fix->degraded) {
      ++stats_.degraded_fixes;
      if (metrics_ && metrics_->degraded_fixes)
        metrics_->degraded_fixes->inc();
    }
  }
  return fix;
}

std::vector<Fix> IngestGuard::flush() {
  std::vector<Fix> fixes;
  fixes.reserve(buffer_.size());
  while (!buffer_.empty()) {
    const auto fix = release_front();
    if (fix.has_value()) fixes.push_back(*fix);
  }
  return fixes;
}

}  // namespace wiloc::core
