// Arrival-time prediction (paper Eqs. 5, 8, 9).
//
// Per segment:   Tp(i,j,t) = Th(i,j,l) + mean_k [ Tr(i,k,l) - Th(i,k,l) ]
// where the correction averages the residuals of the buses (of *any*
// route sharing the segment, unless configured otherwise) that most
// recently traversed it — the temporal-consistency lever that
// distinguishes WiLocator from same-route-only predictors [28, 29].
//
// Arrival at a downstream stop (Eq. 9) chains the fractional remainder
// of the current segment, the full intermediate segments, and the
// fraction of the stop's segment — advancing the clock as it goes so
// that a horizon crossing a slot boundary uses the next slot's
// statistics ("the computation will be separated slot-by-slot").
#pragma once

#include <optional>

#include "core/travel_time.hpp"
#include "util/obs.hpp"

namespace wiloc::core {

struct PredictorOptions {
  bool use_recent = true;    ///< Eq.-8 correction; false = schedule-style
  bool cross_route = true;   ///< use recents of other routes too
  double recent_window_s = 35.0 * 60.0;  ///< recency horizon
  std::size_t max_recent = 8;            ///< J in Eq. 5
  double correction_clamp_frac = 0.8;    ///< |corr| <= frac * Th
  double correction_shrinkage = 1.5;     ///< corr *= n/(n + this): thin
                                         ///< evidence is trusted less
  double min_segment_time_s = 5.0;
  double fallback_speed_frac = 0.55;     ///< of the limit, for cold edges
};

/// Stable fingerprint over every option that shapes how the persisted
/// recent-correction state (the store's recent rings) is interpreted.
/// The server embeds it in checkpoints; a mismatch on recovery flags
/// configuration drift (persist.config_mismatch) instead of silently
/// re-reading old state under new semantics.
std::uint64_t options_fingerprint(const PredictorOptions& options);

/// Obs handles for the prediction path; all-null by default. Updates are
/// wait-free, so the const query methods stay thread-safe.
struct PredictorMetrics {
  obs::Counter* predictions = nullptr;  ///< segment estimates served
  obs::Counter* fallbacks = nullptr;    ///< cold-edge speed-limit estimates
  obs::HistogramMetric* correction_s = nullptr;  ///< applied Eq.-8 correction
};

/// Stateless prediction over a TravelTimeStore (which must outlive the
/// predictor and be finalized before querying).
class ArrivalPredictor {
 public:
  explicit ArrivalPredictor(const TravelTimeStore& store,
                            PredictorOptions options = {});

  /// Eq. 8: expected travel time of `route` across `edge` around time t.
  /// nullopt when no historical data exists for any route on the edge.
  std::optional<double> predict_segment_time(roadnet::EdgeId edge,
                                             roadnet::RouteId route,
                                             SimTime t) const;

  /// The shrunk (unclamped) Eq.-5 residual correction computed from the
  /// buses that recently traversed `edge`, any route. nullopt when no
  /// recent traversal has a historical baseline. This is the
  /// temporal-consistency signal on its own — the traffic-map builder
  /// consults it to infer the state of segments it has no fresh
  /// observations for.
  std::optional<double> recent_correction(roadnet::EdgeId edge,
                                          SimTime t) const;

  /// Travel time from route offset `from` to `to` (from <= to) starting
  /// at `t`, slot-by-slot. Segments with no history fall back to a
  /// speed-limit estimate, so a value is always produced.
  double predict_travel_time(const roadnet::BusRoute& route, double from,
                             double to, SimTime t) const;

  /// Eq. 9: absolute arrival time at the stop for a bus currently at
  /// `current_offset`. Requires a valid stop index; returns `now` when
  /// the stop is behind the bus.
  SimTime predict_arrival(const roadnet::BusRoute& route,
                          double current_offset, SimTime now,
                          std::size_t stop_index) const;

  const PredictorOptions& options() const { return options_; }
  const TravelTimeStore& store() const { return *store_; }

  void set_metrics(const PredictorMetrics& metrics) { metrics_ = metrics; }

 private:
  /// Segment time with the cold-start fallback applied.
  double segment_time_or_fallback(const roadnet::BusRoute& route,
                                  std::size_t edge_index, SimTime t) const;

  /// Shrunk (unclamped) mean residual of the recent traversals of `edge`,
  /// optionally restricted to one route. nullopt when none has a
  /// historical baseline.
  std::optional<double> correction_from_recents(
      roadnet::EdgeId edge, std::optional<roadnet::RouteId> same_route_only,
      SimTime t) const;

  const TravelTimeStore* store_;
  PredictorOptions options_;
  PredictorMetrics metrics_;
};

}  // namespace wiloc::core
