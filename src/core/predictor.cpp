#include "core/predictor.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/contracts.hpp"
#include "util/hashing.hpp"

namespace wiloc::core {

std::uint64_t options_fingerprint(const PredictorOptions& o) {
  std::uint64_t h = hash_coords(0x70726564ULL,  // "pred"
                                (o.use_recent ? 1u : 0u) |
                                    (o.cross_route ? 2u : 0u),
                                std::bit_cast<std::uint64_t>(o.recent_window_s),
                                o.max_recent);
  h = hash_coords(h, std::bit_cast<std::uint64_t>(o.correction_clamp_frac),
                  std::bit_cast<std::uint64_t>(o.correction_shrinkage),
                  std::bit_cast<std::uint64_t>(o.min_segment_time_s));
  return hash_coords(h, std::bit_cast<std::uint64_t>(o.fallback_speed_frac));
}

ArrivalPredictor::ArrivalPredictor(const TravelTimeStore& store,
                                   PredictorOptions options)
    : store_(&store), options_(options) {
  WILOC_EXPECTS(options_.recent_window_s > 0.0);
  WILOC_EXPECTS(options_.max_recent >= 1);
  WILOC_EXPECTS(options_.correction_clamp_frac >= 0.0);
  WILOC_EXPECTS(options_.fallback_speed_frac > 0.0 &&
                options_.fallback_speed_frac <= 1.0);
}

std::optional<double> ArrivalPredictor::predict_segment_time(
    roadnet::EdgeId edge, roadnet::RouteId route, SimTime t) const {
  const std::size_t slot = store_->slots().slot_of(t);

  // Th(i, j, l), falling back to the cross-route mean for this slot when
  // this particular route has no history here.
  std::optional<double> th = store_->historical_mean(edge, route, slot);
  if (!th.has_value()) th = store_->historical_mean_any_route(edge, slot);
  if (!th.has_value()) return std::nullopt;

  double prediction = *th;

  if (options_.use_recent) {
    const auto raw = correction_from_recents(
        edge,
        options_.cross_route ? std::nullopt
                             : std::optional<roadnet::RouteId>(route),
        t);
    if (raw.has_value()) {
      const double clamp = options_.correction_clamp_frac * *th;
      const double correction = std::clamp(*raw, -clamp, clamp);
      if (metrics_.correction_s != nullptr)
        metrics_.correction_s->record(correction);
      prediction += correction;
    }
  }

  return std::max(prediction, options_.min_segment_time_s);
}

std::optional<double> ArrivalPredictor::correction_from_recents(
    roadnet::EdgeId edge, std::optional<roadnet::RouteId> same_route_only,
    SimTime t) const {
  const DaySlots& slots = store_->slots();
  const auto recents = store_->recent(edge, t, options_.recent_window_s,
                                      options_.max_recent);
  double residual_sum = 0.0;
  std::size_t used = 0;
  for (const TravelObservation& r : recents) {
    if (same_route_only.has_value() && !(r.route == *same_route_only))
      continue;
    const std::size_t r_slot = slots.slot_of(r.exit_time);
    std::optional<double> r_th =
        store_->historical_mean(r.edge, r.route, r_slot);
    if (!r_th.has_value())
      r_th = store_->historical_mean_any_route(r.edge, r_slot);
    if (!r_th.has_value()) continue;
    residual_sum += r.travel_time - *r_th;
    ++used;
  }
  if (used == 0) return std::nullopt;
  // Shrink thin evidence toward zero: one noisy tracked bus should not
  // swing the estimate as much as a consistent platoon.
  const double n = static_cast<double>(used);
  return (residual_sum / n) * (n / (n + options_.correction_shrinkage));
}

std::optional<double> ArrivalPredictor::recent_correction(
    roadnet::EdgeId edge, SimTime t) const {
  return correction_from_recents(edge, std::nullopt, t);
}

double ArrivalPredictor::segment_time_or_fallback(
    const roadnet::BusRoute& route, std::size_t edge_index, SimTime t) const {
  if (metrics_.predictions != nullptr) metrics_.predictions->inc();
  const roadnet::EdgeId edge_id = route.edges()[edge_index];
  if (const auto tp = predict_segment_time(edge_id, route.id(), t);
      tp.has_value())
    return *tp;
  if (metrics_.fallbacks != nullptr) metrics_.fallbacks->inc();
  const roadnet::RoadSegment& edge = route.network().edge(edge_id);
  return edge.length() /
         (edge.speed_limit() * options_.fallback_speed_frac);
}

double ArrivalPredictor::predict_travel_time(const roadnet::BusRoute& route,
                                             double from, double to,
                                             SimTime t) const {
  WILOC_EXPECTS(from <= to);
  from = std::clamp(from, 0.0, route.length());
  to = std::clamp(to, 0.0, route.length());
  if (to <= from) return 0.0;

  const auto start = route.position_at(from);
  const auto finish = route.position_at(to);

  double elapsed = 0.0;
  for (std::size_t e = start.edge_index; e <= finish.edge_index; ++e) {
    const double edge_begin = route.edge_start_offset(e);
    const double edge_end = route.edge_end_offset(e);
    const double edge_len = edge_end - edge_begin;
    if (edge_len <= 0.0) continue;
    const double span_begin = std::max(from, edge_begin);
    const double span_end = std::min(to, edge_end);
    if (span_end <= span_begin) continue;
    // Eq. 9's dr(...)/dr(start, end) fraction terms, "separated
    // slot-by-slot": when crossing this edge outlasts the current
    // time-of-day slot, only the fraction coverable before the boundary
    // is charged at this slot's rate; the remainder re-evaluates the
    // edge under the next slot's statistics.
    double frac_remaining = (span_end - span_begin) / edge_len;
    const DaySlots& slots = store_->slots();
    int depth = 0;
    while (frac_remaining > 1e-12) {
      const SimTime clock = t + elapsed;
      const double full_time = segment_time_or_fallback(route, e, clock);
      const double time_needed = frac_remaining * full_time;
      const double to_boundary = slots.slot_end_time(clock) - clock;
      // Depth cap: a degenerate store (near-zero segment times over
      // many tiny slots) must not spin; finish at the current rate.
      if (time_needed <= to_boundary || full_time <= 0.0 || ++depth > 64) {
        elapsed += time_needed;
        break;
      }
      frac_remaining -= to_boundary / full_time;
      elapsed += to_boundary;
    }
  }
  return elapsed;
}

SimTime ArrivalPredictor::predict_arrival(const roadnet::BusRoute& route,
                                          double current_offset, SimTime now,
                                          std::size_t stop_index) const {
  const double stop_offset = route.stop_offset(stop_index);
  if (stop_offset <= current_offset) return now;
  return now + predict_travel_time(route, current_offset, stop_offset, now);
}

}  // namespace wiloc::core
