#include "core/route_identifier.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace wiloc::core {

RouteIdentifier::RouteIdentifier(std::vector<Hypothesis> hypotheses,
                                 RouteIdentifierParams params)
    : hypotheses_(std::move(hypotheses)), params_(params) {
  WILOC_EXPECTS(!hypotheses_.empty());
  tracks_.reserve(hypotheses_.size());
  for (const Hypothesis& h : hypotheses_) {
    WILOC_EXPECTS(h.route != nullptr);
    WILOC_EXPECTS(h.index != nullptr);
    tracks_.push_back(
        {SvdPositioner(*h.index, params_.positioner),
         MobilityFilter(params_.filter), 0.0});
  }
}

void RouteIdentifier::ingest(const rf::WifiScan& scan) {
  ++scans_;
  for (Track& track : tracks_) {
    const auto candidates = track.positioner.locate(scan);
    const auto fix = track.filter.update(scan.time, candidates);
    // Evidence: the confidence of the filtered fix. A wrong route either
    // fails to match signatures (low candidate scores) or matches them
    // in kinematically impossible places (filter coasts, confidence
    // decays).
    track.score_sum += fix.has_value() ? fix->confidence : 0.0;
  }
}

std::vector<double> RouteIdentifier::scores() const {
  std::vector<double> out;
  out.reserve(tracks_.size());
  for (const Track& track : tracks_)
    out.push_back(scans_ == 0 ? 0.0
                              : track.score_sum /
                                    static_cast<double>(scans_));
  return out;
}

std::optional<roadnet::RouteId> RouteIdentifier::decision() const {
  if (scans_ < params_.min_scans) return std::nullopt;
  const auto s = scores();
  std::size_t best = 0;
  for (std::size_t i = 1; i < s.size(); ++i)
    if (s[i] > s[best]) best = i;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i == best) continue;
    if (s[best] - s[i] < params_.decisive_margin) return std::nullopt;
  }
  return hypotheses_[best].route->id();
}

}  // namespace wiloc::core
