#include "core/persist.hpp"

#include <bit>
#include <filesystem>
#include <fstream>

#include "util/contracts.hpp"
#include "util/hashing.hpp"

namespace wiloc::core {

ObservationKey ObservationKey::of(const TravelObservation& obs) {
  ObservationKey k;
  k.edge = obs.edge.value();
  k.route = obs.route.value();
  k.exit_bits = std::bit_cast<std::uint64_t>(obs.exit_time);
  k.travel_bits = std::bit_cast<std::uint64_t>(obs.travel_time);
  return k;
}

std::size_t ObservationKey::Hash::operator()(const ObservationKey& k) const {
  return static_cast<std::size_t>(
      hash_coords(hash_coords(0x6f62736bULL, k.edge, k.route), k.exit_bits,
                  k.travel_bits));
}

StatePersistence::StatePersistence(PersistenceConfig config)
    : config_(std::move(config)) {
  WILOC_EXPECTS(config_.enabled());
  WILOC_EXPECTS(config_.snapshot_interval_s > 0.0);
  WILOC_EXPECTS(config_.journal_trigger_bytes > 0);
  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  if (ec)
    throw Error("persist: cannot create state directory " + config_.dir +
                ": " + ec.message());
  writer_ = std::make_unique<journal::Writer>(journal_path(), config_.fsync,
                                              config_.failure_hook);
  if (metrics_.journal_bytes != nullptr)
    metrics_.journal_bytes->set(static_cast<double>(writer_->size_bytes()));
}

void StatePersistence::append(JournalRecord type,
                              const TravelObservation& obs) {
  BinWriter frame;
  frame.put_u64(++seq_);
  frame.put_u8(static_cast<std::uint8_t>(type));
  encode_observation(frame, obs);
  try {
    writer_->append(frame.bytes());
  } catch (...) {
    poisoned_.store(true, std::memory_order_release);
    throw;
  }
  {
    const std::lock_guard<std::mutex> lock(time_mu_);
    if (!last_checkpoint_time_.has_value())
      last_checkpoint_time_ = obs.exit_time;
  }
  if (metrics_.journal_appends != nullptr) metrics_.journal_appends->inc();
  if (metrics_.journal_bytes != nullptr)
    metrics_.journal_bytes->set(static_cast<double>(writer_->size_bytes()));
}

bool StatePersistence::should_checkpoint(SimTime now) const {
  if (writer_->size_bytes() >= config_.journal_trigger_bytes) return true;
  const std::lock_guard<std::mutex> lock(time_mu_);
  return last_checkpoint_time_.has_value() &&
         now - *last_checkpoint_time_ >= config_.snapshot_interval_s;
}

void StatePersistence::write_checkpoint(std::span<const std::byte> body,
                                        SimTime now) {
  try {
    journal::write_snapshot_file(
        snapshot_path(), kSnapshotMagic, kSnapshotVersion, body,
        config_.fsync != journal::FsyncPolicy::never, config_.failure_hook);
    // The snapshot covers everything journaled so far: compact. A crash
    // between the rename above and this truncate leaves overlapping
    // records, which replay dedups via the embedded watermark.
    writer_->reset();
    std::error_code ec;
    std::filesystem::remove(sealed_journal_path(), ec);
    // Every record up to seq_ now lives only in the snapshot: tailing
    // peers below this watermark must resume from it.
    covered_seq_.store(seq_, std::memory_order_release);
    sealed_through_.store(0, std::memory_order_release);
  } catch (...) {
    poisoned_.store(true, std::memory_order_release);
    throw;
  }
  finish_checkpoint(now);
  if (metrics_.journal_bytes != nullptr)
    metrics_.journal_bytes->set(static_cast<double>(writer_->size_bytes()));
}

void StatePersistence::seal_journal() {
  try {
    writer_.reset();  // close the active journal before renaming it
    std::error_code ec;
    const std::string active = journal_path();
    const std::string sealed = sealed_journal_path();
    if (std::filesystem::exists(active, ec) &&
        std::filesystem::file_size(active, ec) > 0) {
      if (std::filesystem::exists(sealed, ec)) {
        // A crashed checkpoint left a sealed segment behind. Frames are
        // self-delimiting, so appending the active journal keeps the
        // concatenation a valid, ordered journal.
        std::ofstream out(sealed, std::ios::binary | std::ios::app);
        std::ifstream in(active, std::ios::binary);
        out << in.rdbuf();
        if (!out) throw Error("persist: sealing journal append failed");
        out.close();
        std::filesystem::remove(active);
      } else {
        std::filesystem::rename(active, sealed);
      }
    }
    writer_ = std::make_unique<journal::Writer>(
        journal_path(), config_.fsync, config_.failure_hook);
    // Everything appended so far is now in the sealed file; the commit
    // that removes it promotes this to the compaction watermark.
    sealed_through_.store(seq_, std::memory_order_release);
  } catch (...) {
    poisoned_.store(true, std::memory_order_release);
    throw;
  }
  if (metrics_.journal_bytes != nullptr)
    metrics_.journal_bytes->set(static_cast<double>(writer_->size_bytes()));
}

void StatePersistence::commit_checkpoint(std::span<const std::byte> body,
                                         SimTime now) {
  try {
    journal::write_snapshot_file(
        snapshot_path(), kSnapshotMagic, kSnapshotVersion, body,
        config_.fsync != journal::FsyncPolicy::never, config_.failure_hook);
    // The snapshot embeds the watermark of everything sealed, so the
    // sealed segment is redundant. A crash before this remove leaves
    // overlap that replay dedups. The active journal is untouched —
    // the control thread keeps appending to it concurrently.
    std::error_code ec;
    std::filesystem::remove(sealed_journal_path(), ec);
    const std::uint64_t sealed =
        sealed_through_.load(std::memory_order_acquire);
    std::uint64_t covered = covered_seq_.load(std::memory_order_acquire);
    while (sealed > covered &&
           !covered_seq_.compare_exchange_weak(covered, sealed,
                                               std::memory_order_acq_rel)) {
    }
  } catch (...) {
    poisoned_.store(true, std::memory_order_release);
    throw;
  }
  finish_checkpoint(now);
}

void StatePersistence::finish_checkpoint(SimTime now) {
  {
    const std::lock_guard<std::mutex> lock(time_mu_);
    last_checkpoint_time_ = now;
  }
  if (metrics_.snapshots != nullptr) metrics_.snapshots->inc();
}

std::uint64_t StatePersistence::journal_bytes() const {
  return writer_->size_bytes();
}

StatePersistence::TailResult StatePersistence::tail_segments(
    std::uint64_t after, std::size_t max_bytes) const {
  TailResult out;
  const auto take_frame = [&](std::span<const std::byte> payload) {
    if (out.truncated) return;
    std::uint64_t seq = 0;
    try {
      BinReader r(payload);
      seq = r.get_u64();
    } catch (const DecodeError&) {
      return;  // undecodable record: recovery skips it, so do peers
    }
    if (seq <= after) return;
    if (!out.frames.empty() && out.frames.size() + payload.size() + 8 >
                                   max_bytes) {
      out.truncated = true;  // page full; peer re-tails from last_seq
      return;
    }
    journal::append_frame(out.frames, payload);
    if (out.records == 0) out.first_seq = seq;
    out.last_seq = std::max(out.last_seq, seq);
    ++out.records;
  };
  // Sealed segment first (older records), then the active journal —
  // append order, exactly like recovery. Both replays tolerate a torn
  // or in-progress tail frame: it is simply not shipped yet.
  journal::replay(sealed_journal_path(), take_frame);
  journal::replay(journal_path(), take_frame);
  return out;
}

StatePersistence::RecoveryResult StatePersistence::recover() {
  RecoveryResult result;
  try {
    result.snapshot =
        journal::read_snapshot_file(snapshot_path(), kSnapshotMagic);
  } catch (const DecodeError&) {
    // A corrupt snapshot must not abort recovery: the journal may still
    // hold a usable (if older) view of the world.
    result.snapshot_corrupt = true;
  }

  const auto decode_frame = [&](std::span<const std::byte> payload) {
    try {
      BinReader r(payload);
      RecoveredRecord rec;
      rec.seq = r.get_u64();
      const std::uint8_t type = r.get_u8();
      if (type != static_cast<std::uint8_t>(JournalRecord::history_obs) &&
          type != static_cast<std::uint8_t>(JournalRecord::recent_obs))
        throw DecodeError("persist: unknown journal record type " +
                          std::to_string(type));
      rec.type = static_cast<JournalRecord>(type);
      rec.obs = decode_observation(r);
      result.records.push_back(rec);
    } catch (const DecodeError&) {
      ++result.undecodable;
    }
  };

  // A sealed segment (crashed two-phase checkpoint) holds the older
  // records: replay it before the active journal so records arrive in
  // append order.
  const journal::ReplayStats sealed =
      journal::replay(sealed_journal_path(), decode_frame);
  result.replay = journal::replay(journal_path(), decode_frame);
  result.replay.frames_ok += sealed.frames_ok;
  result.replay.frames_corrupt += sealed.frames_corrupt;
  result.replay.torn_tail = result.replay.torn_tail || sealed.torn_tail;
  result.replay.bytes_scanned += sealed.bytes_scanned;
  return result;
}

std::uint64_t state_fingerprint(const DaySlots& slots,
                                std::uint64_t predictor_fingerprint) {
  BinWriter w;
  slots.encode(w);
  return hash_coords(0x736c6f74ULL, journal::crc32(w.bytes()),
                     predictor_fingerprint);
}

}  // namespace wiloc::core
