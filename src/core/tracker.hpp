// Real-time per-trip tracking.
//
// Chains positioner -> mobility filter over the scan stream of one bus
// and converts the resulting fix trajectory into *segment observations*:
// when consecutive fixes straddle an intersection, the crossing time is
// interpolated assuming steady speed between the two fixes —
// t(A, B) * dr(A, boundary) / dr(A, B) — exactly the Fig. 5 scheme. Each
// fully traversed segment yields one TravelObservation for the store.
#pragma once

#include <optional>
#include <vector>

#include "core/mobility_filter.hpp"
#include "core/positioner.hpp"
#include "core/travel_time.hpp"
#include "roadnet/route.hpp"

namespace wiloc::core {

/// Tracks one trip. The route and positioner must outlive the tracker.
class BusTracker {
 public:
  BusTracker(const roadnet::BusRoute& route,
             const SvdPositioner& positioner,
             MobilityFilterParams filter_params = {});

  /// Processes one scan; returns the resulting fix (if any). Scans must
  /// arrive in time order (an IngestGuard enforces this in front of the
  /// server's trackers); malformed readings (NaN RSSI, duplicate AP ids)
  /// are tolerated — the positioner sanitizes them — and a scan that
  /// matches nothing yields a dead-reckoned fix flagged Fix::degraded.
  std::optional<Fix> ingest(const rf::WifiScan& scan);

  /// All fixes so far (time-ordered).
  const std::vector<Fix>& fixes() const { return fixes_; }

  /// Segment traversals completed so far. Grows as the bus crosses
  /// intersections; each entry's travel time came from interpolated
  /// boundary-crossing times.
  const std::vector<TravelObservation>& completed_segments() const {
    return segments_;
  }

  /// Segment observations not yet handed over (and marks them so);
  /// lets a server drain incrementally.
  std::vector<TravelObservation> drain_segments();

  const roadnet::BusRoute& route() const { return *route_; }

  /// Current best estimate of the bus's route offset, if tracking.
  std::optional<double> current_offset() const;

 private:
  void cross_boundaries(const Fix& prev, const Fix& cur);

  const roadnet::BusRoute* route_;
  const SvdPositioner* positioner_;
  MobilityFilter filter_;
  std::vector<Fix> fixes_;
  std::vector<TravelObservation> segments_;
  std::size_t drained_ = 0;

  // Boundary-crossing state.
  std::size_t current_edge_ = 0;
  SimTime current_edge_enter_ = 0.0;
  bool enter_known_ = false;  ///< true when entry came from a crossing
};

}  // namespace wiloc::core
