// Travel-time bookkeeping: the data layer of the predictor.
//
// The paper splits travel-time knowledge into two kinds:
//  - *historical*: per (segment, route, time-slot) means Th(i, j, l),
//    gathered offline over weeks (Section V-A3, offline training);
//  - *recent*: the travel times of the J buses (of any route) that most
//    recently traversed each segment, Tr(i, k) — the timely signal that
//    corrects the historical mean (Eq. 5/8).
//
// The store also keeps per-(segment, slot) residual statistics
// (Tr - Th), which the traffic-map classifier standardizes into z-scores
// (Section V-B3).
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "roadnet/route.hpp"
#include "util/binio.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace wiloc::core {

/// One completed segment traversal.
struct TravelObservation {
  roadnet::EdgeId edge;
  roadnet::RouteId route;
  SimTime exit_time;   ///< when the bus left the segment
  double travel_time;  ///< seconds spent on the segment

  friend bool operator==(const TravelObservation&,
                         const TravelObservation&) = default;
};

/// Serializes one observation for the journal / snapshot layer.
void encode_observation(BinWriter& w, const TravelObservation& obs);
TravelObservation decode_observation(BinReader& r);

class TravelTimeStore {
 public:
  /// `slots` defines the time-of-day partition used for all historical
  /// aggregation (the paper's 5 weekday slots, or the slots produced by
  /// the seasonal-index analysis).
  explicit TravelTimeStore(DaySlots slots);

  // -- offline history --------------------------------------------------

  /// Adds one training observation. Must precede finalize_history().
  void add_history(const TravelObservation& obs);

  /// Computes per-(edge, slot) residual statistics from the accumulated
  /// history. Call once after loading; add_history afterwards throws.
  void finalize_history();
  bool finalized() const { return finalized_; }

  /// Historical mean Th(i, j, l); nullopt when the (edge, route, slot)
  /// cell has no data.
  std::optional<double> historical_mean(roadnet::EdgeId edge,
                                        roadnet::RouteId route,
                                        std::size_t slot) const;

  /// Historical mean across all routes on the edge in the slot.
  std::optional<double> historical_mean_any_route(roadnet::EdgeId edge,
                                                  std::size_t slot) const;

  /// Residual (Tr - Th) mean / stddev per (edge, slot). Requires
  /// finalize_history(). nullopt when fewer than 2 residuals exist.
  std::optional<double> residual_mean(roadnet::EdgeId edge,
                                      std::size_t slot) const;
  std::optional<double> residual_stddev(roadnet::EdgeId edge,
                                        std::size_t slot) const;

  /// Number of history observations for the edge (all routes/slots).
  std::size_t history_count(roadnet::EdgeId edge) const;

  const DaySlots& slots() const { return slots_; }

  // -- online recents ----------------------------------------------------

  /// Records a just-completed traversal (from live tracking). Exact
  /// duplicates (same edge, route, exit time and travel time) are
  /// dropped, so journal replay after a crash and a re-fed scan stream
  /// cannot double-count a traversal. Returns false for a duplicate.
  bool add_recent(const TravelObservation& obs);

  /// The most recent traversals of the edge within `window_s` of `now`,
  /// newest first, at most `max_count`.
  std::vector<TravelObservation> recent(roadnet::EdgeId edge, SimTime now,
                                        double window_s,
                                        std::size_t max_count) const;

  /// Drops recents older than `now - window_s` (ring hygiene).
  void prune_recent(SimTime now, double window_s);

  // -- segment-update epochs ---------------------------------------------

  /// Monotone version counter of the learned state, bumped by every
  /// mutation that can change a prediction (add_history, add_recent,
  /// prune_recent, finalize_history, restore). Process-local — not
  /// persisted; a restore counts as "everything changed".
  std::uint64_t epoch() const { return epoch_; }

  /// The epoch at which this edge's travel-time evidence last changed.
  /// Whole-store invalidations (finalize, restore) raise a floor shared
  /// by every edge, so `edge_epoch(e) > seen` is the exact "did anything
  /// that can move a prediction across `e` change since `seen`" test the
  /// materialized arrival table rebuilds on.
  std::uint64_t edge_epoch(roadnet::EdgeId edge) const;

  // -- persistence -------------------------------------------------------

  /// Serializes the complete store state (slots, history cells,
  /// cross-route aggregates, residuals, pre-finalize raw history, and
  /// the recent rings — the predictor's Eq. 5/8 recent-correction
  /// state) into `w`. restore() rebuilds it bit-exactly.
  void save(BinWriter& w) const;

  /// Replaces this store's entire state with one written by save().
  /// Throws DecodeError on a malformed or version-incompatible body.
  void restore(BinReader& r);

  /// Pre-finalize training observations (empty once finalized). The
  /// server rebuilds its history dedup set from this after a restore.
  const std::vector<TravelObservation>& raw_history() const {
    return raw_history_;
  }

 private:
  /// Exact (edge, route, slot) cell identity. The three fields span up to
  /// 32 + 32 + 64 bits, which no bit-packed 64-bit key can hold without
  /// aliasing (the seed packed (edge<<32)|(route<<8)|slot, so route ids
  /// >= 2^24 bled into the edge bits and slots >= 256 into the route
  /// bits, silently merging unrelated history cells).
  struct CellKey {
    std::uint32_t edge;
    std::uint32_t route;
    std::uint32_t slot;
    bool operator==(const CellKey&) const = default;
  };
  struct CellKeyHash {
    std::size_t operator()(const CellKey& k) const;
  };

  static CellKey cell_key(roadnet::EdgeId edge, roadnet::RouteId route,
                          std::size_t slot);
  static std::uint64_t edge_slot_key(roadnet::EdgeId edge, std::size_t slot);

  DaySlots slots_;
  bool finalized_ = false;
  std::unordered_map<CellKey, RunningStats, CellKeyHash> history_;  // per cell
  std::unordered_map<std::uint64_t, RunningStats> edge_slot_; // across routes
  std::vector<TravelObservation> raw_history_;
  std::unordered_map<std::uint64_t, RunningStats> residuals_; // per edge+slot
  std::unordered_map<roadnet::EdgeId, std::deque<TravelObservation>> recent_;

  /// Marks `edge` changed at a fresh epoch (see edge_epoch()).
  void bump_edge(roadnet::EdgeId edge);

  std::uint64_t epoch_ = 0;
  std::uint64_t epoch_floor_ = 0;  ///< whole-store invalidation watermark
  std::unordered_map<roadnet::EdgeId, std::uint64_t> edge_epoch_;
};

}  // namespace wiloc::core
