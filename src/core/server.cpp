#include "core/server.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace wiloc::core {

WiLocatorServer::WiLocatorServer(
    std::vector<const roadnet::BusRoute*> routes,
    std::vector<rf::AccessPoint> aps, const rf::LogDistanceModel& model,
    DaySlots slots, ServerConfig config)
    : config_(config),
      store_(std::move(slots)),
      predictor_(store_, config.predictor),
      traffic_builder_(store_, predictor_, config.traffic) {
  WILOC_EXPECTS(!routes.empty());
  for (const roadnet::BusRoute* route : routes) {
    WILOC_EXPECTS(route != nullptr);
    adopt_route(*route, std::make_unique<svd::RouteSvd>(*route, aps, model,
                                                        config_.svd));
  }
}

WiLocatorServer::WiLocatorServer(std::vector<RouteIndex> bindings,
                                 DaySlots slots, ServerConfig config)
    : config_(config),
      store_(std::move(slots)),
      predictor_(store_, config.predictor),
      traffic_builder_(store_, predictor_, config.traffic) {
  WILOC_EXPECTS(!bindings.empty());
  for (RouteIndex& binding : bindings) {
    WILOC_EXPECTS(binding.route != nullptr);
    WILOC_EXPECTS(binding.index != nullptr);
    adopt_route(*binding.route, std::move(binding.index));
  }
}

void WiLocatorServer::adopt_route(
    const roadnet::BusRoute& route,
    std::unique_ptr<svd::PositioningIndex> index) {
  RouteRuntime rt;
  rt.route = &route;
  rt.index = std::move(index);
  rt.positioner =
      std::make_unique<SvdPositioner>(*rt.index, config_.positioner);
  routes_.emplace(route.id(), std::move(rt));
}

void WiLocatorServer::load_history(const TravelObservation& obs) {
  store_.add_history(obs);
}

void WiLocatorServer::finalize_history() { store_.finalize_history(); }

void WiLocatorServer::begin_trip(roadnet::TripId trip,
                                 roadnet::RouteId route) {
  const RouteRuntime& rt = runtime_for(route);
  if (trips_.count(trip) != 0)
    throw StateError("trip " + std::to_string(trip.value()) +
                     " already registered");
  TripRuntime tr;
  tr.route = route;
  tr.tracker = std::make_unique<BusTracker>(*rt.route, *rt.positioner,
                                            config_.filter);
  tr.guard = std::make_unique<IngestGuard>(*tr.tracker, *rt.index,
                                           config_.ingest);
  trips_.emplace(trip, std::move(tr));
}

bool WiLocatorServer::has_trip(roadnet::TripId trip) const {
  return trips_.count(trip) != 0;
}

IngestResult WiLocatorServer::ingest(roadnet::TripId trip,
                                     const rf::WifiScan& scan) {
  const auto it = trips_.find(trip);
  if (it == trips_.end()) {
    ++orphan_stats_.submitted;
    ++orphan_stats_.rejected_by_reason[static_cast<std::size_t>(
        RejectReason::unknown_trip)];
    return {IngestStatus::rejected, RejectReason::unknown_trip,
            std::nullopt, 0};
  }
  if (!it->second.active) {
    ++orphan_stats_.submitted;
    ++orphan_stats_.rejected_by_reason[static_cast<std::size_t>(
        RejectReason::closed_trip)];
    return {IngestStatus::rejected, RejectReason::closed_trip,
            std::nullopt, 0};
  }
  IngestResult result = it->second.guard->submit(scan);
  harvest_segments(it->second);
  return result;
}

void WiLocatorServer::harvest_segments(TripRuntime& tr) {
  for (const TravelObservation& obs : tr.tracker->drain_segments())
    store_.add_recent(obs);
}

void WiLocatorServer::flush_trip(roadnet::TripId trip) {
  const auto it = trips_.find(trip);
  if (it == trips_.end())
    throw NotFound("unknown trip " + std::to_string(trip.value()));
  it->second.guard->flush();
  harvest_segments(it->second);
}

void WiLocatorServer::end_trip(roadnet::TripId trip) {
  const auto it = trips_.find(trip);
  if (it == trips_.end())
    throw NotFound("unknown trip " + std::to_string(trip.value()));
  if (it->second.active) {
    it->second.guard->flush();
    harvest_segments(it->second);
  }
  it->second.active = false;
}

std::optional<double> WiLocatorServer::position(
    roadnet::TripId trip) const {
  return tracker(trip).current_offset();
}

std::optional<SimTime> WiLocatorServer::eta(roadnet::TripId trip,
                                            std::size_t stop_index,
                                            SimTime now) const {
  const auto it = trips_.find(trip);
  if (it == trips_.end())
    throw NotFound("unknown trip " + std::to_string(trip.value()));
  const auto offset = it->second.tracker->current_offset();
  if (!offset.has_value()) return std::nullopt;
  const roadnet::BusRoute& route = *runtime_for(it->second.route).route;
  return predictor_.predict_arrival(route, *offset, now, stop_index);
}

TrafficMap WiLocatorServer::traffic_map(SimTime now) const {
  std::vector<roadnet::EdgeId> edges;
  for (const auto& [id, rt] : routes_)
    edges.insert(edges.end(), rt.route->edges().begin(),
                 rt.route->edges().end());
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return traffic_builder_.build(edges, now);
}

std::vector<Anomaly> WiLocatorServer::anomalies(
    roadnet::TripId trip) const {
  const auto it = trips_.find(trip);
  if (it == trips_.end())
    throw NotFound("unknown trip " + std::to_string(trip.value()));
  const roadnet::BusRoute& route = *runtime_for(it->second.route).route;
  const AnomalyDetector detector(route, config_.typical_scan_distance_m);
  return detector.detect(it->second.tracker->fixes());
}

const IngestStats& WiLocatorServer::trip_ingest_stats(
    roadnet::TripId trip) const {
  const auto it = trips_.find(trip);
  if (it == trips_.end())
    throw NotFound("unknown trip " + std::to_string(trip.value()));
  return it->second.guard->stats();
}

IngestStats WiLocatorServer::ingest_stats() const {
  IngestStats total = orphan_stats_;
  for (const auto& [id, tr] : trips_) total += tr.guard->stats();
  return total;
}

const svd::PositioningIndex& WiLocatorServer::index_for(
    roadnet::RouteId route) const {
  return *runtime_for(route).index;
}

const BusTracker& WiLocatorServer::tracker(roadnet::TripId trip) const {
  const auto it = trips_.find(trip);
  if (it == trips_.end())
    throw NotFound("unknown trip " + std::to_string(trip.value()));
  return *it->second.tracker;
}

const roadnet::BusRoute& WiLocatorServer::route(roadnet::RouteId id) const {
  return *runtime_for(id).route;
}

const WiLocatorServer::RouteRuntime& WiLocatorServer::runtime_for(
    roadnet::RouteId route) const {
  const auto it = routes_.find(route);
  if (it == routes_.end())
    throw NotFound("unknown route " + std::to_string(route.value()));
  return it->second;
}

}  // namespace wiloc::core
