#include "core/server.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace wiloc::core {

WiLocatorServer::WiLocatorServer(
    std::vector<const roadnet::BusRoute*> routes,
    std::vector<rf::AccessPoint> aps, const rf::LogDistanceModel& model,
    DaySlots slots, ServerConfig config)
    : config_(config),
      engine_(std::make_unique<IngestEngine>(
          config.filter, config.ingest, config.engine,
          ObsHooks{&registry_, &tracer_})),
      store_(std::move(slots)),
      predictor_(store_, config.predictor),
      traffic_builder_(store_, predictor_, config.traffic) {
  WILOC_EXPECTS(!routes.empty());
  init_obs();
  for (const roadnet::BusRoute* route : routes) {
    WILOC_EXPECTS(route != nullptr);
    adopt_route(*route, std::make_unique<svd::RouteSvd>(*route, aps, model,
                                                        config_.svd));
  }
}

WiLocatorServer::WiLocatorServer(std::vector<RouteIndex> bindings,
                                 DaySlots slots, ServerConfig config)
    : config_(config),
      engine_(std::make_unique<IngestEngine>(
          config.filter, config.ingest, config.engine,
          ObsHooks{&registry_, &tracer_})),
      store_(std::move(slots)),
      predictor_(store_, config.predictor),
      traffic_builder_(store_, predictor_, config.traffic) {
  WILOC_EXPECTS(!bindings.empty());
  init_obs();
  for (RouteIndex& binding : bindings) {
    WILOC_EXPECTS(binding.route != nullptr);
    WILOC_EXPECTS(binding.index != nullptr);
    adopt_route(*binding.route, std::move(binding.index));
  }
}

void WiLocatorServer::init_obs() {
  tracer_.set_enabled(config_.tracing);

  PredictorMetrics pm;
  pm.predictions = &registry_.counter("predictor.predictions");
  pm.fallbacks = &registry_.counter("predictor.fallbacks");
  pm.correction_s =
      &registry_.histogram("predictor.correction_s", -60.0, 60.0, 24);
  predictor_.set_metrics(pm);

  TrafficMetrics tm;
  tm.normal = &registry_.counter("traffic.normal");
  tm.slow = &registry_.counter("traffic.slow");
  tm.very_slow = &registry_.counter("traffic.very_slow");
  tm.unknown = &registry_.counter("traffic.unknown");
  tm.inferred = &registry_.counter("traffic.inferred");
  traffic_builder_.set_metrics(tm);

  obs_published_ = &registry_.counter("server.observations_published");
}

void WiLocatorServer::adopt_route(
    const roadnet::BusRoute& route,
    std::unique_ptr<svd::PositioningIndex> index) {
  RouteRuntime rt;
  rt.route = &route;
  rt.index = std::move(index);
  svd::LocateMetrics lm;
  lm.fast_path_hits = &registry_.counter("locate.fast_path_hits");
  lm.fallback_hits = &registry_.counter("locate.fallback_hits");
  lm.misses = &registry_.counter("locate.misses");
  lm.candidates = &registry_.histogram("locate.candidates", 0.0, 16.0, 16);
  rt.index->set_metrics(lm);
  rt.positioner =
      std::make_unique<SvdPositioner>(*rt.index, config_.positioner);
  engine_->bind_route(route.id(),
                      {rt.route, rt.index.get(), rt.positioner.get()});
  routes_.emplace(route.id(), std::move(rt));
}

void WiLocatorServer::load_history(const TravelObservation& obs) {
  store_.add_history(obs);
}

void WiLocatorServer::finalize_history() { store_.finalize_history(); }

void WiLocatorServer::begin_trip(roadnet::TripId trip,
                                 roadnet::RouteId route) {
  runtime_for(route);  // throws NotFound before touching the engine
  engine_->begin_trip(trip, route);
}

bool WiLocatorServer::has_trip(roadnet::TripId trip) const {
  return engine_->has_trip(trip);
}

IngestResult WiLocatorServer::ingest(roadnet::TripId trip,
                                     const rf::WifiScan& scan) {
  const IngestResult result = engine_->ingest(trip, scan);
  publish_pending();
  return result;
}

BatchIngestResult WiLocatorServer::ingest_batch(
    std::span<const ScanSubmission> batch) {
  const BatchIngestResult result = engine_->ingest_batch(batch);
  publish_pending();
  return result;
}

void WiLocatorServer::drain() {
  engine_->drain();
  publish_pending();
}

void WiLocatorServer::publish_pending() const {
  for (const TravelObservation& obs : engine_->take_ready_observations()) {
    store_.add_recent(obs);
    if (obs_published_ != nullptr) obs_published_->inc();
  }
}

void WiLocatorServer::flush_trip(roadnet::TripId trip) {
  engine_->flush_trip(trip);
  publish_pending();
}

void WiLocatorServer::end_trip(roadnet::TripId trip) {
  engine_->end_trip(trip);
  publish_pending();
}

std::optional<double> WiLocatorServer::position(
    roadnet::TripId trip) const {
  return engine_->position(trip);
}

std::optional<SimTime> WiLocatorServer::eta(roadnet::TripId trip,
                                            std::size_t stop_index,
                                            SimTime now) const {
  const auto offset = engine_->position(trip);  // throws on unknown trip
  if (!offset.has_value()) return std::nullopt;
  publish_pending();
  const roadnet::BusRoute& route =
      *runtime_for(engine_->route_of(trip)).route;
  return predictor_.predict_arrival(route, *offset, now, stop_index);
}

TrafficMap WiLocatorServer::traffic_map(SimTime now) const {
  publish_pending();
  std::vector<roadnet::EdgeId> edges;
  for (const auto& [id, rt] : routes_)
    edges.insert(edges.end(), rt.route->edges().begin(),
                 rt.route->edges().end());
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return traffic_builder_.build(edges, now);
}

std::vector<Anomaly> WiLocatorServer::anomalies(
    roadnet::TripId trip) const {
  const std::vector<Fix> fixes = engine_->fixes(trip);
  const roadnet::BusRoute& route =
      *runtime_for(engine_->route_of(trip)).route;
  const AnomalyDetector detector(route, config_.typical_scan_distance_m);
  return detector.detect(fixes);
}

IngestStats WiLocatorServer::trip_ingest_stats(roadnet::TripId trip) const {
  return engine_->trip_stats(trip);
}

IngestStats WiLocatorServer::ingest_stats() const {
  return engine_->total_stats();
}

const svd::PositioningIndex& WiLocatorServer::index_for(
    roadnet::RouteId route) const {
  return *runtime_for(route).index;
}

const BusTracker& WiLocatorServer::tracker(roadnet::TripId trip) const {
  return engine_->tracker(trip);
}

const roadnet::BusRoute& WiLocatorServer::route(roadnet::RouteId id) const {
  return *runtime_for(id).route;
}

const WiLocatorServer::RouteRuntime& WiLocatorServer::runtime_for(
    roadnet::RouteId route) const {
  const auto it = routes_.find(route);
  if (it == routes_.end())
    throw NotFound("unknown route " + std::to_string(route.value()));
  return it->second;
}

}  // namespace wiloc::core
