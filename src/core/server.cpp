#include "core/server.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace wiloc::core {

WiLocatorServer::WiLocatorServer(
    std::vector<const roadnet::BusRoute*> routes,
    std::vector<rf::AccessPoint> aps, const rf::LogDistanceModel& model,
    DaySlots slots, ServerConfig config)
    : config_(config),
      engine_(std::make_unique<IngestEngine>(
          config.filter, config.ingest, config.engine,
          ObsHooks{&registry_, &tracer_})),
      store_(std::move(slots)),
      predictor_(store_, config.predictor),
      traffic_builder_(store_, predictor_, config.traffic),
      arrival_table_(store_, predictor_, traffic_builder_, config.arrival) {
  WILOC_EXPECTS(!routes.empty());
  init_obs();
  for (const roadnet::BusRoute* route : routes) {
    WILOC_EXPECTS(route != nullptr);
    adopt_route(*route, std::make_unique<svd::RouteSvd>(*route, aps, model,
                                                        config_.svd));
  }
  init_arrival_table();
  init_persistence();
}

WiLocatorServer::WiLocatorServer(std::vector<RouteIndex> bindings,
                                 DaySlots slots, ServerConfig config)
    : config_(config),
      engine_(std::make_unique<IngestEngine>(
          config.filter, config.ingest, config.engine,
          ObsHooks{&registry_, &tracer_})),
      store_(std::move(slots)),
      predictor_(store_, config.predictor),
      traffic_builder_(store_, predictor_, config.traffic),
      arrival_table_(store_, predictor_, traffic_builder_, config.arrival) {
  WILOC_EXPECTS(!bindings.empty());
  init_obs();
  for (RouteIndex& binding : bindings) {
    WILOC_EXPECTS(binding.route != nullptr);
    WILOC_EXPECTS(binding.index != nullptr);
    adopt_route(*binding.route, std::move(binding.index));
  }
  init_arrival_table();
  init_persistence();
}

WiLocatorServer::~WiLocatorServer() {
  // Graceful shutdown: drain the engine FIRST so the final metrics
  // window and checkpoint cover every submitted scan, then persist the
  // learned state — unless a persistence write already failed (injected
  // crash or real I/O error), in which case the on-disk state must stay
  // exactly as the failure left it.
  try {
    engine_->drain();
    if (persist_ == nullptr || !persist_->poisoned()) {
      publish_pending();
      if (persist_ != nullptr) do_checkpoint();
    }
  } catch (...) {
    // A destructor must not throw; the state directory simply keeps its
    // last consistent view and the next start recovers from it.
  }
  // Ordered strictly after the drain above: the reporter's final line
  // must account for the complete stream (idempotent — a service
  // front-end may already have flushed during its own shutdown).
  try {
    if (reporter_ != nullptr) reporter_->flush_final();
  } catch (...) {
  }
}

void WiLocatorServer::init_obs() {
  tracer_.set_enabled(config_.tracing);

  PredictorMetrics pm;
  pm.predictions = &registry_.counter("predictor.predictions");
  pm.fallbacks = &registry_.counter("predictor.fallbacks");
  pm.correction_s =
      &registry_.histogram("predictor.correction_s", -60.0, 60.0, 24);
  predictor_.set_metrics(pm);

  TrafficMetrics tm;
  tm.normal = &registry_.counter("traffic.normal");
  tm.slow = &registry_.counter("traffic.slow");
  tm.very_slow = &registry_.counter("traffic.very_slow");
  tm.unknown = &registry_.counter("traffic.unknown");
  tm.inferred = &registry_.counter("traffic.inferred");
  traffic_builder_.set_metrics(tm);

  obs_published_ = &registry_.counter("server.observations_published");
  history_dups_ = &registry_.counter("server.history_duplicates");
  repl_applied_ = &registry_.counter("server.replicated_applied");
  repl_dups_ = &registry_.counter("server.replicated_duplicates");

  ArrivalTableMetrics am;
  am.invalidations = &registry_.counter("arrival_cache.invalidations");
  am.rebuilds = &registry_.counter("arrival_cache.rebuilds");
  am.entries = &registry_.gauge("arrival_cache.entries");
  am.epoch = &registry_.gauge("arrival_cache.epoch");
  arrival_table_.set_metrics(am);

  persist_metrics_.snapshots = &registry_.counter("persist.snapshots");
  persist_metrics_.journal_appends =
      &registry_.counter("persist.journal_appends");
  persist_metrics_.recovered = &registry_.counter("persist.recovered");
  persist_metrics_.skipped = &registry_.counter("persist.skipped");
  persist_metrics_.corrupt = &registry_.counter("persist.corrupt");
  persist_metrics_.config_mismatch =
      &registry_.counter("persist.config_mismatch");
  persist_metrics_.journal_bytes = &registry_.gauge("persist.journal_bytes");
}

void WiLocatorServer::init_arrival_table() {
  for (const auto& [id, rt] : routes_)
    all_edges_.insert(all_edges_.end(), rt.route->edges().begin(),
                      rt.route->edges().end());
  std::sort(all_edges_.begin(), all_edges_.end());
  all_edges_.erase(std::unique(all_edges_.begin(), all_edges_.end()),
                   all_edges_.end());
  arrival_table_.set_traffic_edges(all_edges_);
}

void WiLocatorServer::init_persistence() {
  config_fingerprint_ = state_fingerprint(
      store_.slots(), options_fingerprint(config_.predictor));
  if (!config_.persist.enabled()) return;
  persist_ = std::make_unique<StatePersistence>(config_.persist);
  persist_->set_metrics(persist_metrics_);
  if (config_.persist.recover_on_start) recover_state();
}

void WiLocatorServer::recover_state() {
  StatePersistence::RecoveryResult rec = persist_->recover();
  std::uint64_t corrupt = rec.replay.frames_corrupt + rec.undecodable;
  if (rec.replay.torn_tail) ++corrupt;
  if (rec.snapshot_corrupt) ++corrupt;

  std::uint64_t watermark = 0;
  if (rec.snapshot.has_value()) {
    try {
      BinReader r(rec.snapshot->body);
      watermark = apply_snapshot_body(r);
      // Keep the journal sequence monotonic across restarts: tailing
      // peers key their replication watermarks on it, so a restarted
      // node must not reissue already-replicated sequence numbers.
      persist_->resume_seq(watermark);
      recovered_ = true;
    } catch (const DecodeError&) {
      // CRC-clean but semantically undecodable (e.g. foreign layout):
      // fall back to the journal alone, like a corrupt snapshot.
      ++corrupt;
    }
  }

  std::uint64_t applied = 0;
  std::uint64_t skipped = 0;
  for (const StatePersistence::RecoveredRecord& record : rec.records) {
    persist_->resume_seq(record.seq);
    if (record.seq <= watermark) {  // already inside the snapshot
      ++skipped;
      continue;
    }
    bool added = false;
    if (record.type == JournalRecord::history_obs) {
      if (!store_.finalized() &&
          history_seen_.insert(ObservationKey::of(record.obs)).second) {
        store_.add_history(record.obs);
        added = true;
      }
    } else {
      added = store_.add_recent(record.obs);
    }
    if (added) {
      ++applied;
      recovered_ = true;
      note_event(record.obs.exit_time);
    } else {
      ++skipped;
    }
  }

  if (applied > 0 && persist_metrics_.recovered != nullptr)
    persist_metrics_.recovered->inc(applied);
  if (skipped > 0 && persist_metrics_.skipped != nullptr)
    persist_metrics_.skipped->inc(skipped);
  if (corrupt > 0 && persist_metrics_.corrupt != nullptr)
    persist_metrics_.corrupt->inc(corrupt);

  // Fold everything recovered into a fresh snapshot: torn tails and
  // orphaned records are gone, and the new run starts from a compact,
  // verified baseline.
  if (recovered_) do_checkpoint();
}

std::vector<std::byte> WiLocatorServer::snapshot_body() const {
  BinWriter w;
  w.put_u64(config_fingerprint_);
  w.put_u64(persist_ != nullptr ? persist_->last_seq() : 0);
  store_.save(w);
  traffic_builder_.save(w);
  return w.take();
}

std::uint64_t WiLocatorServer::apply_snapshot_body(BinReader& r) {
  const std::uint64_t fingerprint = r.get_u64();
  const std::uint64_t watermark = r.get_u64();
  if (fingerprint != config_fingerprint_ &&
      persist_metrics_.config_mismatch != nullptr)
    persist_metrics_.config_mismatch->inc();
  store_.restore(r);
  traffic_builder_.restore(r);
  history_seen_.clear();
  for (const TravelObservation& obs : store_.raw_history())
    history_seen_.insert(ObservationKey::of(obs));
  return watermark;
}

void WiLocatorServer::do_checkpoint() const {
  const std::vector<std::byte> body = snapshot_body();
  persist_->write_checkpoint(body, last_event_time_);
}

void WiLocatorServer::maybe_checkpoint() const {
  if (!inline_checkpoints_) return;  // a background checkpointer owns it
  if (persist_ == nullptr || !has_event_) return;
  if (!persist_->should_checkpoint(last_event_time_)) return;
  do_checkpoint();
}

bool WiLocatorServer::checkpoint_due() const {
  if (persist_ == nullptr || persist_->poisoned() || !has_event_)
    return false;
  return persist_->should_checkpoint(last_event_time_);
}

WiLocatorServer::PreparedCheckpoint WiLocatorServer::prepare_checkpoint() {
  PreparedCheckpoint prepared;
  if (persist_ == nullptr || persist_->poisoned()) return prepared;
  publish_pending();
  persist_->seal_journal();
  prepared.body = snapshot_body();
  prepared.at = last_event_time_;
  prepared.valid = true;
  return prepared;
}

void WiLocatorServer::commit_prepared(PreparedCheckpoint&& prepared) {
  if (!prepared.valid || persist_ == nullptr) return;
  persist_->commit_checkpoint(prepared.body, prepared.at);
  prepared = {};
}

void WiLocatorServer::note_event(SimTime t) const {
  // Callers are serialized (service lock), so the read-modify-write is
  // race-free; the release store pairs with the acquire load in
  // last_event_time() on the reporter thread.
  if (!has_event_.load(std::memory_order_relaxed) ||
      t > last_event_time_.load(std::memory_order_relaxed)) {
    last_event_time_.store(t, std::memory_order_relaxed);
    has_event_.store(true, std::memory_order_release);
  }
}

void WiLocatorServer::checkpoint() {
  WILOC_EXPECTS(persist_ != nullptr);
  publish_pending();
  do_checkpoint();
}

void WiLocatorServer::save_snapshot(const std::string& path) const {
  publish_pending();
  journal::write_snapshot_file(path, StatePersistence::kSnapshotMagic,
                               StatePersistence::kSnapshotVersion,
                               snapshot_body(), /*do_fsync=*/true);
}

bool WiLocatorServer::restore_snapshot(const std::string& path) {
  const auto snap =
      journal::read_snapshot_file(path, StatePersistence::kSnapshotMagic);
  if (!snap.has_value()) return false;
  if (snap->version != StatePersistence::kSnapshotVersion)
    throw DecodeError("server snapshot: unsupported version " +
                      std::to_string(snap->version));
  BinReader r(snap->body);
  apply_snapshot_body(r);
  recovered_ = true;
  return true;
}

void WiLocatorServer::adopt_route(
    const roadnet::BusRoute& route,
    std::unique_ptr<svd::PositioningIndex> index) {
  RouteRuntime rt;
  rt.route = &route;
  rt.index = std::move(index);
  svd::LocateMetrics lm;
  lm.fast_path_hits = &registry_.counter("locate.fast_path_hits");
  lm.fallback_hits = &registry_.counter("locate.fallback_hits");
  lm.misses = &registry_.counter("locate.misses");
  lm.candidates = &registry_.histogram("locate.candidates", 0.0, 16.0, 16);
  lm.memo_hits = &registry_.counter("locate.memo_hits");
  rt.index->set_metrics(lm);
  rt.positioner =
      std::make_unique<SvdPositioner>(*rt.index, config_.positioner);
  engine_->bind_route(route.id(),
                      {rt.route, rt.index.get(), rt.positioner.get()});
  routes_.emplace(route.id(), std::move(rt));
}

void WiLocatorServer::load_history(const TravelObservation& obs) {
  if (!history_seen_.insert(ObservationKey::of(obs)).second) {
    if (history_dups_ != nullptr) history_dups_->inc();
    return;
  }
  store_.add_history(obs);  // throws once finalized, before any journaling
  note_event(obs.exit_time);
  if (persist_ != nullptr) {
    persist_->append(JournalRecord::history_obs, obs);
    maybe_checkpoint();
  }
}

bool WiLocatorServer::apply_replicated(JournalRecord type,
                                       const TravelObservation& obs) {
  // Mirrors the recovery fold: same dedup, same finalized-history gate —
  // a replicated record is just a journal record that took the network
  // path instead of the disk path. No local journal append (see header).
  bool added = false;
  if (type == JournalRecord::history_obs) {
    if (!store_.finalized() &&
        history_seen_.insert(ObservationKey::of(obs)).second) {
      store_.add_history(obs);
      added = true;
    }
  } else {
    added = store_.add_recent(obs);
  }
  if (added) {
    note_event(obs.exit_time);
    if (repl_applied_ != nullptr) repl_applied_->inc();
  } else if (repl_dups_ != nullptr) {
    repl_dups_->inc();
  }
  return added;
}

void WiLocatorServer::finalize_history() {
  store_.finalize_history();
  history_seen_.clear();  // raw history is frozen; the set is done
  if (persist_ != nullptr) do_checkpoint();
}

void WiLocatorServer::begin_trip(roadnet::TripId trip,
                                 roadnet::RouteId route) {
  const RouteRuntime& rt = runtime_for(route);  // throws NotFound first
  engine_->begin_trip(trip, route);
  arrival_table_.track(trip, rt.route);
}

bool WiLocatorServer::has_trip(roadnet::TripId trip) const {
  return engine_->has_trip(trip);
}

IngestResult WiLocatorServer::ingest(roadnet::TripId trip,
                                     const rf::WifiScan& scan) {
  const IngestResult result = engine_->ingest(trip, scan);
  ++ingest_activity_;
  publish_pending();
  return result;
}

BatchIngestResult WiLocatorServer::ingest_batch(
    std::span<const ScanSubmission> batch) {
  const BatchIngestResult result = engine_->ingest_batch(batch);
  ++ingest_activity_;
  publish_pending();
  return result;
}

void WiLocatorServer::drain() {
  engine_->drain();
  ++ingest_activity_;
  publish_pending();
}

void WiLocatorServer::publish_pending() const {
  for (const TravelObservation& obs : engine_->take_ready_observations()) {
    const bool added = store_.add_recent(obs);
    if (obs_published_ != nullptr) obs_published_->inc();
    note_event(obs.exit_time);
    // Journal only genuinely new observations: a duplicate the store
    // dropped must not resurface on the next replay.
    if (added && persist_ != nullptr)
      persist_->append(JournalRecord::recent_obs, obs);
  }
  maybe_refresh_arrivals();
  maybe_checkpoint();
  if (reporter_ != nullptr && has_event_)
    reporter_->maybe_report(last_event_time_);
}

void WiLocatorServer::maybe_refresh_arrivals() const {
  if (!has_event_ || !store_.finalized()) return;
  if (ingest_activity_ == refreshed_activity_ &&
      store_.epoch() == refreshed_epoch_ && !arrival_table_.dirty())
    return;
  // Coalescing: a hot ingest stream pays materialization at most once
  // per window. Skipped work stays pending (the gate above still sees
  // stale counters) until a later publish or flush_arrivals().
  const double min_gap = arrival_table_.params().min_refresh_wall_s;
  if (min_gap > 0.0 && wall_clock_s() - arrival_refresh_wall_ < min_gap)
    return;
  arrival_refresh_wall_ = wall_clock_s();
  refreshed_activity_ = ingest_activity_;
  refreshed_epoch_ = store_.epoch();
  arrival_table_.refresh(last_event_time_, [this](roadnet::TripId trip) {
    return engine_->position(trip);
  });
}

void WiLocatorServer::flush_arrivals() const {
  arrival_refresh_wall_ = -1.0e300;
  maybe_refresh_arrivals();
}

void WiLocatorServer::flush_trip(roadnet::TripId trip) {
  engine_->flush_trip(trip);
  ++ingest_activity_;
  publish_pending();
}

void WiLocatorServer::end_trip(roadnet::TripId trip) {
  engine_->end_trip(trip);
  arrival_table_.drop(trip);
  ++ingest_activity_;
  publish_pending();
}

std::optional<double> WiLocatorServer::position(
    roadnet::TripId trip) const {
  return engine_->position(trip);
}

std::optional<SimTime> WiLocatorServer::eta(roadnet::TripId trip,
                                            std::size_t stop_index,
                                            SimTime now) const {
  const auto offset = engine_->position(trip);  // throws on unknown trip
  if (!offset.has_value()) return std::nullopt;
  publish_pending();
  const roadnet::BusRoute& route =
      *runtime_for(engine_->route_of(trip)).route;
  return predictor_.predict_arrival(route, *offset, now, stop_index);
}

TrafficMap WiLocatorServer::traffic_map(SimTime now) const {
  publish_pending();
  return traffic_builder_.build(all_edges_, now);
}

std::vector<Anomaly> WiLocatorServer::anomalies(
    roadnet::TripId trip) const {
  const std::vector<Fix> fixes = engine_->fixes(trip);
  const roadnet::BusRoute& route =
      *runtime_for(engine_->route_of(trip)).route;
  const AnomalyDetector detector(route, config_.typical_scan_distance_m);
  return detector.detect(fixes);
}

IngestStats WiLocatorServer::trip_ingest_stats(roadnet::TripId trip) const {
  return engine_->trip_stats(trip);
}

IngestStats WiLocatorServer::ingest_stats() const {
  return engine_->total_stats();
}

const svd::PositioningIndex& WiLocatorServer::index_for(
    roadnet::RouteId route) const {
  return *runtime_for(route).index;
}

const BusTracker& WiLocatorServer::tracker(roadnet::TripId trip) const {
  return engine_->tracker(trip);
}

const roadnet::BusRoute& WiLocatorServer::route(roadnet::RouteId id) const {
  return *runtime_for(id).route;
}

const WiLocatorServer::RouteRuntime& WiLocatorServer::runtime_for(
    roadnet::RouteId route) const {
  const auto it = routes_.find(route);
  if (it == routes_.end())
    throw NotFound("unknown route " + std::to_string(route.value()));
  return it->second;
}

}  // namespace wiloc::core
