#include "core/server.hpp"

#include "util/contracts.hpp"

namespace wiloc::core {

WiLocatorServer::WiLocatorServer(
    std::vector<const roadnet::BusRoute*> routes,
    std::vector<rf::AccessPoint> aps, const rf::LogDistanceModel& model,
    DaySlots slots, ServerConfig config)
    : config_(config),
      store_(std::move(slots)),
      predictor_(store_, config.predictor),
      traffic_builder_(store_, predictor_, config.traffic) {
  WILOC_EXPECTS(!routes.empty());
  for (const roadnet::BusRoute* route : routes) {
    WILOC_EXPECTS(route != nullptr);
    adopt_route(*route, std::make_unique<svd::RouteSvd>(*route, aps, model,
                                                        config_.svd));
  }
}

WiLocatorServer::WiLocatorServer(std::vector<RouteIndex> bindings,
                                 DaySlots slots, ServerConfig config)
    : config_(config),
      store_(std::move(slots)),
      predictor_(store_, config.predictor),
      traffic_builder_(store_, predictor_, config.traffic) {
  WILOC_EXPECTS(!bindings.empty());
  for (RouteIndex& binding : bindings) {
    WILOC_EXPECTS(binding.route != nullptr);
    WILOC_EXPECTS(binding.index != nullptr);
    adopt_route(*binding.route, std::move(binding.index));
  }
}

void WiLocatorServer::adopt_route(
    const roadnet::BusRoute& route,
    std::unique_ptr<svd::PositioningIndex> index) {
  RouteRuntime rt;
  rt.route = &route;
  rt.index = std::move(index);
  rt.positioner =
      std::make_unique<SvdPositioner>(*rt.index, config_.positioner);
  routes_.emplace(route.id(), std::move(rt));
}

void WiLocatorServer::load_history(const TravelObservation& obs) {
  store_.add_history(obs);
}

void WiLocatorServer::finalize_history() { store_.finalize_history(); }

void WiLocatorServer::begin_trip(roadnet::TripId trip,
                                 roadnet::RouteId route) {
  const RouteRuntime& rt = runtime_for(route);
  if (trips_.count(trip) != 0)
    throw StateError("trip " + std::to_string(trip.value()) +
                     " already registered");
  TripRuntime tr;
  tr.route = route;
  tr.tracker = std::make_unique<BusTracker>(*rt.route, *rt.positioner,
                                            config_.filter);
  trips_.emplace(trip, std::move(tr));
}

bool WiLocatorServer::has_trip(roadnet::TripId trip) const {
  return trips_.count(trip) != 0;
}

std::optional<Fix> WiLocatorServer::ingest(roadnet::TripId trip,
                                           const rf::WifiScan& scan) {
  const auto it = trips_.find(trip);
  if (it == trips_.end())
    throw NotFound("unknown trip " + std::to_string(trip.value()));
  if (!it->second.active)
    throw StateError("trip " + std::to_string(trip.value()) + " is closed");
  const auto fix = it->second.tracker->ingest(scan);
  for (const TravelObservation& obs : it->second.tracker->drain_segments())
    store_.add_recent(obs);
  return fix;
}

void WiLocatorServer::end_trip(roadnet::TripId trip) {
  const auto it = trips_.find(trip);
  if (it == trips_.end())
    throw NotFound("unknown trip " + std::to_string(trip.value()));
  it->second.active = false;
}

std::optional<double> WiLocatorServer::position(
    roadnet::TripId trip) const {
  return tracker(trip).current_offset();
}

std::optional<SimTime> WiLocatorServer::eta(roadnet::TripId trip,
                                            std::size_t stop_index,
                                            SimTime now) const {
  const auto it = trips_.find(trip);
  if (it == trips_.end())
    throw NotFound("unknown trip " + std::to_string(trip.value()));
  const auto offset = it->second.tracker->current_offset();
  if (!offset.has_value()) return std::nullopt;
  const roadnet::BusRoute& route = *runtime_for(it->second.route).route;
  return predictor_.predict_arrival(route, *offset, now, stop_index);
}

TrafficMap WiLocatorServer::traffic_map(SimTime now) const {
  std::vector<roadnet::EdgeId> edges;
  for (const auto& [id, rt] : routes_)
    edges.insert(edges.end(), rt.route->edges().begin(),
                 rt.route->edges().end());
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return traffic_builder_.build(edges, now);
}

std::vector<Anomaly> WiLocatorServer::anomalies(
    roadnet::TripId trip) const {
  const auto it = trips_.find(trip);
  if (it == trips_.end())
    throw NotFound("unknown trip " + std::to_string(trip.value()));
  const roadnet::BusRoute& route = *runtime_for(it->second.route).route;
  const AnomalyDetector detector(route, config_.typical_scan_distance_m);
  return detector.detect(it->second.tracker->fixes());
}

const svd::PositioningIndex& WiLocatorServer::index_for(
    roadnet::RouteId route) const {
  return *runtime_for(route).index;
}

const BusTracker& WiLocatorServer::tracker(roadnet::TripId trip) const {
  const auto it = trips_.find(trip);
  if (it == trips_.end())
    throw NotFound("unknown trip " + std::to_string(trip.value()));
  return *it->second.tracker;
}

const roadnet::BusRoute& WiLocatorServer::route(roadnet::RouteId id) const {
  return *runtime_for(id).route;
}

const WiLocatorServer::RouteRuntime& WiLocatorServer::runtime_for(
    roadnet::RouteId route) const {
  const auto it = routes_.find(route);
  if (it == routes_.end())
    throw NotFound("unknown route " + std::to_string(route.value()));
  return it->second;
}

}  // namespace wiloc::core
