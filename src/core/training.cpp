#include "core/training.hpp"

#include "util/contracts.hpp"

namespace wiloc::core {

TrainingResult train_from_history(
    const std::vector<TravelObservation>& observations,
    TrainingParams params) {
  WILOC_EXPECTS(!observations.empty());
  WILOC_EXPECTS(params.analysis_slots >= 1);

  SeasonalIndexAnalyzer analyzer(params.analysis_slots);
  for (const TravelObservation& obs : observations)
    analyzer.add(obs.edge, time_of_day(obs.exit_time), obs.travel_time);

  TrainingResult result;
  for (const roadnet::EdgeId edge : analyzer.observed_edges()) {
    if (analyzer.has_periodicity(edge, params.periodicity_threshold))
      ++result.segments_with_periodicity;
  }
  result.periodic = result.segments_with_periodicity > 0;

  result.slots = result.periodic
                     ? analyzer.merged_slots_network(params.merge_tolerance)
                     : DaySlots::uniform(1);

  result.store = std::make_unique<TravelTimeStore>(result.slots);
  for (const TravelObservation& obs : observations)
    result.store->add_history(obs);
  result.store->finalize_history();
  return result;
}

}  // namespace wiloc::core
