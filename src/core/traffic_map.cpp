#include "core/traffic_map.hpp"

#include "util/contracts.hpp"

namespace wiloc::core {

const char* to_string(TrafficState state) {
  switch (state) {
    case TrafficState::Unknown:
      return "unknown";
    case TrafficState::Normal:
      return "normal";
    case TrafficState::Slow:
      return "slow";
    case TrafficState::VerySlow:
      return "very-slow";
  }
  return "?";
}

std::size_t TrafficMap::count(TrafficState state) const {
  std::size_t n = 0;
  for (const auto& [edge, seg] : segments)
    if (seg.state == state) ++n;
  return n;
}

TrafficMapBuilder::TrafficMapBuilder(const TravelTimeStore& store,
                                     const ArrivalPredictor& predictor,
                                     TrafficMapParams params)
    : store_(&store), predictor_(&predictor), params_(params) {
  WILOC_EXPECTS(params_.very_slow_z > params_.slow_z);
  WILOC_EXPECTS(params_.slow_z > 0.0);
}

TrafficState TrafficMapBuilder::state_for_z(double z) const {
  if (z >= params_.very_slow_z) return TrafficState::VerySlow;
  if (z >= params_.slow_z) return TrafficState::Slow;
  return TrafficState::Normal;
}

SegmentTraffic TrafficMapBuilder::classify(roadnet::EdgeId edge,
                                           SimTime now) const {
  SegmentTraffic out;
  const std::size_t slot = store_->slots().slot_of(now);
  const auto res_mean = store_->residual_mean(edge, slot);
  const auto res_std = store_->residual_stddev(edge, slot);

  const auto recents =
      store_->recent(edge, now, params_.recent_window_s, params_.max_recent);
  out.recent_count = recents.size();

  // Mean recent residual eps-hat (Eq. 4's estimator), from observed data
  // when available, else from the predictor's inference.
  double residual = 0.0;
  bool have_signal = false;
  if (!recents.empty() && res_mean.has_value() && res_std.has_value() &&
      *res_std > 1e-9) {
    double sum = 0.0;
    std::size_t used = 0;
    for (const TravelObservation& r : recents) {
      const std::size_t r_slot = store_->slots().slot_of(r.exit_time);
      auto th = store_->historical_mean(r.edge, r.route, r_slot);
      if (!th.has_value())
        th = store_->historical_mean_any_route(r.edge, r_slot);
      if (!th.has_value()) continue;
      sum += r.travel_time - *th;
      ++used;
    }
    if (used > 0) {
      residual = sum / static_cast<double>(used);
      have_signal = true;
    }
  }

  if (!have_signal && params_.infer_unknowns && res_mean.has_value() &&
      res_std.has_value() && *res_std > 1e-9) {
    // No bus passed inside the map's (tighter) window: infer from the
    // predictor's temporal-consistency correction, which still sees
    // traversals over its own wider recency horizon. When the predictor
    // has nothing either the correction is zero — the estimate falls
    // back to Th and classifies as normal, the paper's default instead
    // of leaving segments unmarked.
    residual = predictor_->recent_correction(edge, now).value_or(0.0);
    have_signal = true;
    out.inferred = true;
  }

  if (!have_signal || !res_mean.has_value() || !res_std.has_value() ||
      *res_std <= 1e-9) {
    out.state = TrafficState::Unknown;
    count_state(out);
    return out;
  }

  out.z_score = (residual - *res_mean) / *res_std;
  out.state = state_for_z(out.z_score);
  count_state(out);
  return out;
}

void TrafficMapBuilder::count_state(const SegmentTraffic& seg) const {
  obs::Counter* c = nullptr;
  switch (seg.state) {
    case TrafficState::Unknown: c = metrics_.unknown; break;
    case TrafficState::Normal: c = metrics_.normal; break;
    case TrafficState::Slow: c = metrics_.slow; break;
    case TrafficState::VerySlow: c = metrics_.very_slow; break;
  }
  if (c != nullptr) c->inc();
  if (seg.inferred && metrics_.inferred != nullptr) metrics_.inferred->inc();
}

TrafficMap TrafficMapBuilder::build(const std::vector<roadnet::EdgeId>& edges,
                                    SimTime now) const {
  TrafficMap map;
  map.time = now;
  for (const roadnet::EdgeId edge : edges)
    map.segments.emplace(edge, classify(edge, now));
  last_map_ = map;
  last_build_epoch_ = store_->epoch();
  return map;
}

// -- persistence -----------------------------------------------------------

void encode_traffic_map(BinWriter& w, const TrafficMap& map) {
  w.put_f64(map.time);
  w.put_u64(map.segments.size());
  for (const auto& [edge, seg] : map.segments) {
    w.put_u32(edge.value());
    w.put_u8(static_cast<std::uint8_t>(seg.state));
    w.put_f64(seg.z_score);
    w.put_u64(seg.recent_count);
    w.put_u8(seg.inferred ? 1 : 0);
  }
}

TrafficMap decode_traffic_map(BinReader& r) {
  TrafficMap map;
  map.time = r.get_f64();
  const std::uint64_t n = r.get_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const roadnet::EdgeId edge(r.get_u32());
    SegmentTraffic seg;
    const std::uint8_t state = r.get_u8();
    if (state > static_cast<std::uint8_t>(TrafficState::VerySlow))
      throw DecodeError("TrafficMap: unknown segment state " +
                        std::to_string(state));
    seg.state = static_cast<TrafficState>(state);
    seg.z_score = r.get_f64();
    seg.recent_count = static_cast<std::size_t>(r.get_u64());
    seg.inferred = r.get_u8() != 0;
    map.segments.emplace(edge, seg);
  }
  return map;
}

void TrafficMapBuilder::save(BinWriter& w) const {
  w.put_u8(last_map_.has_value() ? 1 : 0);
  if (last_map_.has_value()) encode_traffic_map(w, *last_map_);
}

void TrafficMapBuilder::restore(BinReader& r) {
  if (r.get_u8() != 0)
    last_map_ = decode_traffic_map(r);
  else
    last_map_.reset();
}

}  // namespace wiloc::core
