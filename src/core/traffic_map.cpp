#include "core/traffic_map.hpp"

#include "util/contracts.hpp"

namespace wiloc::core {

const char* to_string(TrafficState state) {
  switch (state) {
    case TrafficState::Unknown:
      return "unknown";
    case TrafficState::Normal:
      return "normal";
    case TrafficState::Slow:
      return "slow";
    case TrafficState::VerySlow:
      return "very-slow";
  }
  return "?";
}

std::size_t TrafficMap::count(TrafficState state) const {
  std::size_t n = 0;
  for (const auto& [edge, seg] : segments)
    if (seg.state == state) ++n;
  return n;
}

TrafficMapBuilder::TrafficMapBuilder(const TravelTimeStore& store,
                                     const ArrivalPredictor& predictor,
                                     TrafficMapParams params)
    : store_(&store), predictor_(&predictor), params_(params) {
  WILOC_EXPECTS(params_.very_slow_z > params_.slow_z);
  WILOC_EXPECTS(params_.slow_z > 0.0);
}

TrafficState TrafficMapBuilder::state_for_z(double z) const {
  if (z >= params_.very_slow_z) return TrafficState::VerySlow;
  if (z >= params_.slow_z) return TrafficState::Slow;
  return TrafficState::Normal;
}

SegmentTraffic TrafficMapBuilder::classify(roadnet::EdgeId edge,
                                           SimTime now) const {
  SegmentTraffic out;
  const std::size_t slot = store_->slots().slot_of(now);
  const auto res_mean = store_->residual_mean(edge, slot);
  const auto res_std = store_->residual_stddev(edge, slot);

  const auto recents =
      store_->recent(edge, now, params_.recent_window_s, params_.max_recent);
  out.recent_count = recents.size();

  // Mean recent residual eps-hat (Eq. 4's estimator), from observed data
  // when available, else from the predictor's inference.
  double residual = 0.0;
  bool have_signal = false;
  if (!recents.empty() && res_mean.has_value() && res_std.has_value() &&
      *res_std > 1e-9) {
    double sum = 0.0;
    std::size_t used = 0;
    for (const TravelObservation& r : recents) {
      const std::size_t r_slot = store_->slots().slot_of(r.exit_time);
      auto th = store_->historical_mean(r.edge, r.route, r_slot);
      if (!th.has_value())
        th = store_->historical_mean_any_route(r.edge, r_slot);
      if (!th.has_value()) continue;
      sum += r.travel_time - *th;
      ++used;
    }
    if (used > 0) {
      residual = sum / static_cast<double>(used);
      have_signal = true;
    }
  }

  if (!have_signal && params_.infer_unknowns && res_mean.has_value() &&
      res_std.has_value() && *res_std > 1e-9) {
    // No bus has passed recently: infer from the predictor, which folds
    // in the recents of *neighbouring* traffic via its store. For a
    // single edge the prediction equals Th when there is truly nothing,
    // which classifies as normal — the paper's map likewise defaults to
    // the temporal-constancy estimate instead of leaving segments
    // unmarked.
    residual = 0.0;
    have_signal = true;
    out.inferred = true;
  }

  if (!have_signal || !res_mean.has_value() || !res_std.has_value() ||
      *res_std <= 1e-9) {
    out.state = TrafficState::Unknown;
    return out;
  }

  out.z_score = (residual - *res_mean) / *res_std;
  out.state = state_for_z(out.z_score);
  return out;
}

TrafficMap TrafficMapBuilder::build(const std::vector<roadnet::EdgeId>& edges,
                                    SimTime now) const {
  TrafficMap map;
  map.time = now;
  for (const roadnet::EdgeId edge : edges)
    map.segments.emplace(edge, classify(edge, now));
  return map;
}

}  // namespace wiloc::core
