// Materialized arrival read path (rider-scale GETs).
//
// At production scale the dominant load is riders polling "when is my
// bus", not ingest. Every answer the read side can serve is a pure
// function of slowly-changing learned state (segment travel times,
// traffic residuals) and per-trip position — so instead of re-running
// the Eq.-9 prediction chain under the service lock per request, the
// control side materializes every (trip, downstream-stop) arrival
// answer once, pre-encodes the JSON bytes, and publishes the whole
// table as an immutable snapshot behind one atomic pointer. Readers
// load the pointer (RCU-style: no mutex, no seqlock retry loop) and
// copy a pre-encoded body; the snapshot they hold stays alive until
// the last reader drops it.
//
// Incrementality rides on TravelTimeStore's segment-update epochs: a
// trip's entries are recomputed only when its position moved or a
// segment on its *remaining* route (current edge onward) changed since
// the entries were computed. Upstream churn and other routes' segments
// leave the pre-encoded bytes untouched — the (trip, stop, epoch) key
// the X-Epoch response header exposes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/predictor.hpp"
#include "core/traffic_map.hpp"
#include "core/travel_time.hpp"
#include "util/obs.hpp"

namespace wiloc::core {

struct ArrivalTableParams {
  /// When false the control side never materializes or publishes, and
  /// every read takes the locked slow path (A/B lever for benches).
  bool enabled = true;
  /// Minimum wall-clock spacing between refreshes. 0 (the default, and
  /// what the tests rely on) refreshes on every publish, so snapshots
  /// track ingest synchronously. Serving deployments set tens of
  /// milliseconds: a hot ingest stream then pays materialization at
  /// most once per window instead of per batch, and skipped work stays
  /// pending until the next publish or WiLocatorServer::flush_arrivals
  /// (the service checkpoint poll calls the latter, bounding staleness
  /// even when ingest goes quiet).
  double min_refresh_wall_s = 0.0;
};

/// Steady-clock seconds; the timebase for snapshot ages and refresh
/// coalescing.
double wall_clock_s();

/// JSON number in the exact form the HTTP layer emits (%.12g,
/// non-finite -> null). Shared so the materialized bodies and the
/// slow-path encoders are byte-identical by construction.
std::string json_num(double v);

/// The /v1/arrival response body for one (trip, stop) answer.
std::string encode_arrival_json(roadnet::TripId trip, std::size_t stop,
                                SimTime now, SimTime arrival);

/// The /v1/traffic-map response body (segments sorted by edge id).
std::string encode_traffic_map_json(const TrafficMap& map);

/// Immutable per-trip slice of the table: one answer per stop, both as
/// the predicted arrival time and as pre-encoded response bytes.
struct TripArrivals {
  roadnet::TripId trip{};
  roadnet::RouteId route{};
  double offset = 0.0;  ///< route offset the entries were computed at
  SimTime now = 0.0;    ///< the "now" baked into the bodies
  std::uint64_t epoch = 0;  ///< store epoch at computation (X-Epoch)
  std::vector<SimTime> arrival;   ///< [stop] absolute arrival time
  std::vector<std::string> body;  ///< [stop] pre-encoded JSON
};

/// One published generation of the read path: everything a rider GET
/// needs, immutable, reachable through a single atomic load.
struct ArrivalSnapshot {
  std::uint64_t epoch = 0;  ///< store epoch at publication
  SimTime now = 0.0;
  double built_wall_s = 0.0;  ///< steady-clock publication time

  std::unordered_map<roadnet::TripId, std::shared_ptr<const TripArrivals>>
      trips;
  /// Best (soonest-arrival) trip per (route, stop) — the rider-facing
  /// route-level query without the O(active-trips) rescan.
  std::unordered_map<std::uint64_t, std::shared_ptr<const TripArrivals>>
      route_best;
  /// Pre-encoded /v1/traffic-map body (empty before the first build).
  std::string traffic_body;

  static std::uint64_t route_stop_key(roadnet::RouteId route,
                                      std::size_t stop) {
    return (static_cast<std::uint64_t>(route.value()) << 32) |
           static_cast<std::uint64_t>(stop);
  }
  const TripArrivals* find(roadnet::TripId trip) const;
  const TripArrivals* best(roadnet::RouteId route, std::size_t stop) const;
};

/// Obs handles for the materialization side; all-null by default.
struct ArrivalTableMetrics {
  obs::Counter* invalidations = nullptr;  ///< entries discarded + redone
  obs::Counter* rebuilds = nullptr;       ///< snapshots published
  obs::Gauge* entries = nullptr;          ///< (trip, stop) bodies live
  obs::Gauge* epoch = nullptr;            ///< published store epoch
};

/// Control-thread-owned materializer. All mutators (track/drop/refresh)
/// run under whatever serializes server control calls; snapshot() is
/// safe from any thread, lock-free.
class ArrivalTable {
 public:
  ArrivalTable(const TravelTimeStore& store, const ArrivalPredictor& predictor,
               const TrafficMapBuilder& traffic,
               ArrivalTableParams params = {});

  void set_metrics(const ArrivalTableMetrics& metrics) { metrics_ = metrics; }

  const ArrivalTableParams& params() const { return params_; }

  /// The edge set the traffic-map body covers (the union of all route
  /// edges, like the slow path's server query).
  void set_traffic_edges(std::vector<roadnet::EdgeId> edges) {
    traffic_edges_ = std::move(edges);
  }

  /// Starts materializing the trip (route must outlive the table).
  void track(roadnet::TripId trip, const roadnet::BusRoute* route);
  /// Stops materializing; the next refresh publishes without the trip.
  void drop(roadnet::TripId trip);
  /// True when a track/drop awaits the next refresh.
  bool dirty() const { return dirty_; }

  using PositionFn =
      std::function<std::optional<double>(roadnet::TripId)>;

  /// Recomputes invalidated entries and publishes a new snapshot when
  /// anything changed. No-op until the store is finalized. `now` is the
  /// server's event clock; `position_of` reads a trip's current offset
  /// (nullopt = no fix yet, the trip is left out of the snapshot).
  void refresh(SimTime now, const PositionFn& position_of);

  /// The current published generation (nullptr before the first
  /// refresh). Lock-free: one atomic shared_ptr load.
  std::shared_ptr<const ArrivalSnapshot> snapshot() const {
    return published_.load(std::memory_order_acquire);
  }

 private:
  struct Tracked {
    const roadnet::BusRoute* route = nullptr;
    std::shared_ptr<const TripArrivals> current;  ///< null before a fix
  };

  /// Did any segment from the trip's current edge onward change since
  /// the entries were computed at epoch `seen`?
  bool remaining_changed(const roadnet::BusRoute& route, double offset,
                         std::uint64_t seen) const;
  std::shared_ptr<const TripArrivals> compute(roadnet::TripId trip,
                                              const roadnet::BusRoute& route,
                                              double offset, SimTime now,
                                              std::uint64_t epoch) const;
  void publish(SimTime now, std::uint64_t epoch);

  const TravelTimeStore* store_;
  const ArrivalPredictor* predictor_;
  const TrafficMapBuilder* traffic_;
  ArrivalTableParams params_;
  ArrivalTableMetrics metrics_;

  std::unordered_map<roadnet::TripId, Tracked> tracked_;
  std::vector<roadnet::EdgeId> traffic_edges_;
  std::string traffic_body_;
  std::uint64_t traffic_epoch_ = 0;  ///< store epoch of traffic_body_
  bool dirty_ = false;

  std::atomic<std::shared_ptr<const ArrivalSnapshot>> published_{nullptr};
};

}  // namespace wiloc::core
