// Trip planning — the paper's third component: "a user interface for
// trip plan, such that the real-time bus track and schedule, and the
// traffic map, can be readily available for intended bus riders."
//
// A rider at a stop asks: which buses will take me to my destination,
// and when do they get here? The planner enumerates the routes that
// serve the origin before the destination, the active trips on them
// that have not yet passed the origin, and their Eq.-9 ETAs at both
// stops. Scheduled (not-yet-departed) service can be merged in by the
// caller via headways; the planner covers the live fleet.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/server.hpp"

namespace wiloc::core {

/// One candidate connection for the rider.
struct TripOption {
  roadnet::TripId trip;
  roadnet::RouteId route;
  std::string route_name;
  SimTime eta_origin = 0.0;       ///< when the bus reaches the rider
  SimTime eta_destination = 0.0;  ///< when it reaches the destination
  double wait_s = 0.0;            ///< eta_origin - now
  double ride_s = 0.0;            ///< eta_destination - eta_origin
};

/// A stop request: a named stop on a route, identified by indices so
/// ambiguity ("Broadway & Main" on several routes) is the caller's
/// concern.
struct StopRef {
  roadnet::RouteId route;
  std::size_t stop_index;
};

/// Plans over the live trips of a WiLocatorServer.
class TripPlanner {
 public:
  /// `server` must outlive the planner.
  explicit TripPlanner(const WiLocatorServer& server);

  /// Options for riding `route` from stop `origin` to stop `destination`
  /// (origin must precede destination on the route), sorted by arrival
  /// at the destination. `trips` lists the active trips on the route
  /// (the server tracks them; the caller knows which are open).
  std::vector<TripOption> plan(
      const roadnet::BusRoute& route, std::size_t origin,
      std::size_t destination, SimTime now,
      const std::vector<roadnet::TripId>& trips) const;

 private:
  const WiLocatorServer* server_;
};

}  // namespace wiloc::core
