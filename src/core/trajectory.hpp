// Geodetic trajectories (paper Definition 6).
//
// "A bus trajectory is a sequence of tuples <lat, long, t>." Internally
// WiLocator works in route offsets; this module converts a tracker's fix
// sequence to geodetic tuples through a LatLonAnchor and serializes them
// as CSV for downstream consumers (the paper's user-interface component).
#pragma once

#include <iosfwd>
#include <vector>

#include "core/mobility_filter.hpp"
#include "geo/latlon.hpp"
#include "roadnet/route.hpp"

namespace wiloc::core {

/// One geodetic trajectory point: the paper's <lat, long, t> tuple.
struct GeoFix {
  geo::LatLon position;
  SimTime time = 0.0;
  double confidence = 0.0;
};

/// Converts route-offset fixes into geodetic tuples.
std::vector<GeoFix> to_geo_trajectory(const std::vector<Fix>& fixes,
                                      const roadnet::BusRoute& route,
                                      const geo::LatLonAnchor& anchor);

/// Writes "latitude,longitude,time_s,confidence" CSV rows (with header).
void write_trajectory_csv(std::ostream& os,
                          const std::vector<GeoFix>& trajectory);

/// Parses a CSV written by write_trajectory_csv. Throws
/// wiloc::InvalidArgument on malformed input.
std::vector<GeoFix> read_trajectory_csv(std::istream& is);

}  // namespace wiloc::core
