// Sharded concurrent ingest — the server's scan-processing engine.
//
// The paper's server must absorb crowd-sensed scans from every bus in a
// city at once; one thread cannot. The engine shards *trips* across a
// fixed worker pool: a trip's id hashes to exactly one shard, so every
// scan of that trip is processed by the same worker in submission order
// — the per-trip ordering contract BusTracker/IngestGuard rely on holds
// with no locking on the scan-processing hot path beyond the shard's own
// (uncontended) state mutex. Cross-trip reads (aggregate stats, live
// position queries) take striped per-shard mutexes; there is no global
// lock anywhere.
//
// Ordering & determinism:
//  - Every submission (scan or control op) gets a global sequence number
//    in call order. Per-shard queues are FIFO, so per-trip processing
//    order == submission order.
//  - begin/end/flush ride the same queues as scans: a scan enqueued
//    before end_trip(t) is processed before the trip closes, exactly as
//    in a serial call sequence.
//  - Completed segment observations are tagged with the sequence number
//    of the submission that produced them and handed over in global
//    sequence order (take_ready_observations releases only the prefix
//    below every shard's processing frontier). The store therefore sees
//    observations in the same order a serial server would insert them.
//  - With workers == 0 the engine degenerates to inline execution on the
//    caller thread: the exact serial pipeline, byte-identical to the
//    pre-engine server. With workers >= 1 a drained engine has produced
//    byte-identical per-trip fixes, stats, and observation order.
//
// Backpressure: each shard's queue is bounded. ingest_batch either
// blocks for room (default, lossless) or rejects the overflow and
// reports it in the BatchIngestResult.
//
// Shutdown: the destructor drains every queue, then joins the workers.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/ingest_guard.hpp"
#include "core/tracker.hpp"
#include "util/obs.hpp"

namespace wiloc::core {

/// One element of a batched submission.
struct ScanSubmission {
  roadnet::TripId trip;
  rf::WifiScan scan;
};

struct IngestEngineParams {
  std::size_t workers = 0;  ///< worker threads; 0 = inline serial mode
  std::size_t queue_capacity = 1024;  ///< waiting jobs per shard
  bool block_on_full = true;  ///< false: reject overflow (backpressure)
  bool record_latency = false;  ///< sample enqueue->processed latency
  /// Jobs a worker drains and processes per shard-state lock acquisition.
  /// Batching amortizes the state mutex and keeps the locate scratch
  /// (posting-list stamps, candidate sets, result memo) hot across
  /// consecutive scans; the cap bounds how long queries and sync
  /// submissions can stall behind one batch. Ignored in serial mode.
  std::size_t max_batch = 128;
};

/// Optional observability wiring. Both pointers may be null (the engine
/// then runs un-instrumented); when set they must outlive the engine.
struct ObsHooks {
  obs::Registry* registry = nullptr;
  obs::Tracer* tracer = nullptr;
};

/// Outcome of one ingest_batch call. Per-scan results are asynchronous;
/// they land in the per-trip / aggregate IngestStats.
struct BatchIngestResult {
  std::size_t submitted = 0;
  std::size_t enqueued = 0;
  std::size_t rejected_backpressure = 0;  ///< only when !block_on_full
  bool complete() const { return enqueued == submitted; }
};

class IngestEngine {
 public:
  /// Per-route shared structures (owned by the server; immutable and
  /// internally thread-safe for concurrent const use across shards).
  struct RouteBinding {
    const roadnet::BusRoute* route = nullptr;
    const svd::PositioningIndex* index = nullptr;
    const SvdPositioner* positioner = nullptr;
  };

  IngestEngine(MobilityFilterParams filter, IngestGuardParams guard,
               IngestEngineParams params = {}, ObsHooks hooks = {});
  ~IngestEngine();

  IngestEngine(const IngestEngine&) = delete;
  IngestEngine& operator=(const IngestEngine&) = delete;

  /// Registers a route. Call before any trip on it begins; bindings must
  /// outlive the engine.
  void bind_route(roadnet::RouteId id, RouteBinding binding);

  // -- trip lifecycle (ordered with scans, synchronous) ------------------

  /// Throws StateError on duplicate trip, NotFound on unknown route.
  void begin_trip(roadnet::TripId trip, roadnet::RouteId route);
  /// Flushes the reorder buffer and closes the trip. Throws NotFound.
  void end_trip(roadnet::TripId trip);
  /// Releases the trip's reorder buffer into its tracker. Throws NotFound.
  void flush_trip(roadnet::TripId trip);

  bool has_trip(roadnet::TripId trip) const;
  roadnet::RouteId route_of(roadnet::TripId trip) const;  ///< throws NotFound

  // -- scan submission ---------------------------------------------------

  /// Serial API: submits one scan and waits for its result. In threaded
  /// mode this rides the shard queue (ordered after everything already
  /// enqueued for the shard).
  IngestResult ingest(roadnet::TripId trip, const rf::WifiScan& scan);

  /// Batched API: enqueues every submission (FIFO per shard). Returns
  /// once all items are enqueued (or rejected under backpressure).
  BatchIngestResult ingest_batch(std::span<const ScanSubmission> batch);

  /// Blocks until every submission made so far has been processed.
  void drain();

  /// Completed segment observations whose global order is final, in
  /// serial submission order. After drain() this is every pending
  /// observation.
  std::vector<TravelObservation> take_ready_observations();

  // -- queries (safe concurrent with ingest workers) ---------------------

  std::optional<double> position(roadnet::TripId trip) const;
  std::vector<Fix> fixes(roadnet::TripId trip) const;  ///< snapshot copy
  IngestStats trip_stats(roadnet::TripId trip) const;
  /// Aggregate over every trip plus orphan (unknown-/closed-trip)
  /// rejections. accounted() holds whenever the engine is idle.
  IngestStats total_stats() const;

  /// Direct tracker access for tests/benches. Requires the engine to be
  /// drained (no worker may be touching the trip).
  const BusTracker& tracker(roadnet::TripId trip) const;

  std::size_t shard_count() const { return shards_.size(); }
  bool threaded() const { return params_.workers > 0; }

  /// Enqueue->processed latency samples (seconds) gathered since the
  /// last call. Empty unless params.record_latency.
  std::vector<double> take_latency_samples();

 private:
  using Clock = std::chrono::steady_clock;

  enum class JobKind : std::uint8_t { scan, begin, flush, end };

  /// Result slot for synchronous submissions (lives on the caller's
  /// stack; guarded by the shard queue mutex).
  struct SyncSlot {
    bool done = false;
    IngestResult result;
    int error = 0;  ///< 0 none, 1 NotFound, 2 StateError
    std::string message;
  };

  struct Job {
    JobKind kind = JobKind::scan;
    roadnet::TripId trip{0};
    roadnet::RouteId route{0};  ///< begin only
    rf::WifiScan scan;          ///< scan only
    std::uint64_t seq = 0;
    Clock::time_point enqueued_at{};
    SyncSlot* slot = nullptr;
  };

  struct TripRuntime {
    roadnet::RouteId route;
    std::unique_ptr<BusTracker> tracker;
    std::unique_ptr<IngestGuard> guard;
    bool active = true;
  };

  struct TaggedObs {
    std::uint64_t seq;
    roadnet::TripId trip;
    TravelObservation obs;
  };

  /// No job in flight (idle shard) — frontier sentinel.
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  struct Shard {
    // Queue side (producer <-> worker handshake).
    mutable std::mutex queue_mu;
    std::condition_variable cv_work;   ///< worker: jobs available
    std::condition_variable cv_room;   ///< producers: capacity freed
    std::condition_variable cv_done;   ///< drain / sync completion
    std::deque<Job> queue;
    std::uint64_t enqueued = 0;
    std::uint64_t processed = 0;
    bool stop = false;

    /// Sequence number of the oldest submission this shard has not
    /// finished processing; kIdle when quiescent. Observations with
    /// seq < min-over-shards(frontier) have final global order.
    std::atomic<std::uint64_t> frontier{kIdle};

    // State side (trip runtimes; locked per processed job and by
    // queries — striped across shards, uncontended on the hot path).
    mutable std::mutex state_mu;
    std::unordered_map<roadnet::TripId, TripRuntime> trips;
    IngestStats orphan;
    std::deque<TaggedObs> pending;  ///< seq ascending
    std::vector<double> latencies_s;

    obs::Gauge* depth_gauge = nullptr;  ///< engine.shard<k>.queue_depth

    std::thread worker;
  };

  Shard& shard_of(roadnet::TripId trip);
  const Shard& shard_of(roadnet::TripId trip) const;

  void worker_loop(Shard& shard);
  /// Executes one job against the shard state (locks state_mu).
  void process(Shard& shard, Job& job);
  /// Executes one job with state_mu already held — the batched worker
  /// path locks once per drained batch instead of once per job.
  void process_locked(Shard& shard, Job& job);
  IngestResult process_scan(Shard& shard, const Job& job);
  void harvest(Shard& shard, roadnet::TripId trip_id, TripRuntime& trip,
               std::uint64_t seq);
  /// Records one span event when tracing is wired and enabled.
  void trace(obs::TraceStage stage, std::uint64_t seq, roadnet::TripId trip,
             double t) const {
    if (hooks_.tracer != nullptr)
      hooks_.tracer->record({seq, trip.value(), stage, t});
  }
  /// Routes a job to its shard and waits for completion (threaded) or
  /// runs it inline (serial). Rethrows slot errors.
  void run_sync(Job job);
  /// Enqueues one job under an already-held sequencing lock. Returns
  /// false when the queue is full and block_on_full is off.
  bool enqueue(Shard& shard, Job&& job);

  MobilityFilterParams filter_params_;
  IngestGuardParams guard_params_;
  IngestEngineParams params_;
  ObsHooks hooks_;
  /// Shared ingest.* counter bundle; handles are null without a registry.
  GuardMetrics guard_metrics_;
  obs::Counter* m_enqueued_ = nullptr;    ///< engine.enqueued (scans)
  obs::Counter* m_processed_ = nullptr;   ///< engine.processed (scans)
  obs::Counter* m_backpressure_ = nullptr;  ///< engine.rejected_backpressure
  obs::Counter* m_observations_ = nullptr;  ///< engine.observations
  obs::HistogramMetric* m_queue_depth_ = nullptr;  ///< engine.queue_depth
  obs::HistogramMetric* m_latency_us_ = nullptr;   ///< engine.latency_us
  std::unordered_map<roadnet::RouteId, RouteBinding> routes_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Serializes sequence-number assignment with queue insertion so the
  /// global submission order is well defined across producer threads.
  std::mutex submit_mu_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace wiloc::core
