// Guarded scan ingestion — the server's first line of defence.
//
// Crowd-sensed scan streams are hostile: reports arrive late, duplicated,
// clock-skewed, truncated, RSSI-corrupted, or full of APs the positioning
// index has never seen (AP churn). The seed pipeline assumed a clean,
// strictly time-ordered stream and threw on anything unexpected, so one
// bad report from one rider could take down tracking for a whole trip.
//
// IngestGuard sits between the wire and BusTracker:
//   1. *Sanitize* each WifiScan: drop non-finite / out-of-range RSSI,
//      duplicate AP readings (strongest wins), readings below the
//      sensitivity floor, and readings from APs unknown to the route's
//      PositioningIndex (churned-in APs only distort the rank signature —
//      the paper's Section III-B robustness argument works on the
//      surviving ranks).
//   2. *Order* the stream: a small bounded reorder buffer absorbs
//      non-monotonic timestamps; scans older than the release watermark
//      are dropped as late, equal-timestamp scans as duplicates.
//   3. *Rate-limit* per trip: released scans must be at least
//      min_scan_spacing_s apart in scan time.
//   4. Return a structured IngestResult (accepted / rejected-with-reason /
//      deferred) instead of throwing, and keep IngestStats counters that
//      account for every submitted scan:
//          accepted + rejected + deferred == submitted, always.
//
// With a clean in-order stream every scan passes through unchanged and in
// submission order, so the guarded pipeline produces bit-identical fixes
// to feeding BusTracker directly (fixes lag by at most reorder_depth
// scans until flush()).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/tracker.hpp"
#include "svd/positioning_index.hpp"
#include "util/obs.hpp"

namespace wiloc::core {

/// Why a scan was not (or not yet) turned into a fix.
enum class RejectReason : std::uint8_t {
  none = 0,           ///< not rejected
  unknown_trip,       ///< trip id never registered
  closed_trip,        ///< trip already ended
  invalid_time,       ///< non-finite timestamp
  empty_scan,         ///< no readings and nothing to coast from
  no_usable_readings, ///< sanitization removed every reading and there is
                      ///< no fix to coast from
  stale_scan,         ///< older than the release watermark (dropped late)
  duplicate_scan,     ///< timestamp already seen (released or buffered)
  rate_limited,       ///< closer than min_scan_spacing_s to the previous
                      ///< released scan
};
inline constexpr std::size_t kRejectReasonCount = 9;

const char* to_string(RejectReason reason);

enum class IngestStatus : std::uint8_t {
  accepted,  ///< released to the tracker (this call)
  rejected,  ///< dropped, see reason
  deferred,  ///< held in the reorder buffer; released by a later submit
             ///< or by flush()
};

/// The structured outcome of one submit(). Optional-like accessors refer
/// to the newest fix produced by any scan *released* during the call
/// (which, under reordering, may be an earlier scan than the one
/// submitted — Fix::time says which).
struct IngestResult {
  IngestStatus status = IngestStatus::rejected;
  RejectReason reason = RejectReason::none;
  std::optional<Fix> fix;
  std::size_t released = 0;  ///< scans handed to the tracker this call

  bool has_value() const { return fix.has_value(); }
  const Fix& operator*() const { return *fix; }
  const Fix* operator->() const { return &*fix; }
};

/// Health counters, per trip and (aggregated) server-wide.
struct IngestStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;   ///< released to the tracker
  std::uint64_t deferred = 0;   ///< currently in the reorder buffer
  std::uint64_t reordered = 0;  ///< absorbed out-of-order arrivals
  std::uint64_t fixes = 0;
  std::uint64_t degraded_fixes = 0;  ///< dead-reckoned (coasted) fixes
  std::array<std::uint64_t, kRejectReasonCount> rejected_by_reason{};

  // Reading-level sanitization (per dropped reading, not per scan).
  std::uint64_t readings_dropped_invalid = 0;     ///< NaN/inf/out-of-range
  std::uint64_t readings_dropped_weak = 0;        ///< below sensitivity
  std::uint64_t readings_dropped_duplicate = 0;   ///< repeated AP id
  std::uint64_t readings_dropped_unknown_ap = 0;  ///< not in the index

  std::uint64_t rejected_total() const;
  std::uint64_t rejected(RejectReason reason) const {
    return rejected_by_reason[static_cast<std::size_t>(reason)];
  }
  std::uint64_t dropped_late() const {
    return rejected(RejectReason::stale_scan);
  }
  /// The accounting invariant every caller may assert on.
  bool accounted() const {
    return accepted + rejected_total() + deferred == submitted;
  }

  IngestStats& operator+=(const IngestStats& other);
};

/// Server-wide obs counters mirroring IngestStats. One bundle is shared
/// by every guard (counters are atomic), so the registry aggregates what
/// total_stats() sums: at quiescence `ingest.accepted` equals the
/// aggregate IngestStats::accepted, and so on. `deferred` counts defer
/// *events* (monotonic), unlike the stats field which tracks occupancy.
struct GuardMetrics {
  obs::Counter* submitted = nullptr;
  obs::Counter* accepted = nullptr;
  obs::Counter* deferred = nullptr;
  obs::Counter* reordered = nullptr;
  obs::Counter* fixes = nullptr;
  obs::Counter* degraded_fixes = nullptr;
  std::array<obs::Counter*, kRejectReasonCount> rejected{};
  obs::Counter* readings_dropped_invalid = nullptr;
  obs::Counter* readings_dropped_weak = nullptr;
  obs::Counter* readings_dropped_duplicate = nullptr;
  obs::Counter* readings_dropped_unknown_ap = nullptr;

  /// Resolves the `ingest.*` counters in `registry`.
  static GuardMetrics registered(obs::Registry& registry);

  void count_rejected(RejectReason reason) const {
    if (obs::Counter* c = rejected[static_cast<std::size_t>(reason)]) c->inc();
  }
};

struct IngestGuardParams {
  double min_rssi_dbm = -110.0;  ///< readings below are corrupt, dropped
  double max_rssi_dbm = 0.0;     ///< readings above are corrupt, dropped
  double sensitivity_floor_dbm = -105.0;  ///< plausible but unusable
  bool filter_unknown_aps = true;
  std::size_t reorder_depth = 4;   ///< buffered scans; 0 = strict order
  double min_scan_spacing_s = 0.5; ///< per-trip rate limit
};

/// Per-trip guarded front end over one BusTracker. The tracker and the
/// index must outlive the guard; `metrics` (optional, shared across
/// guards) must too.
class IngestGuard {
 public:
  IngestGuard(BusTracker& tracker, const svd::PositioningIndex& index,
              IngestGuardParams params = {},
              const GuardMetrics* metrics = nullptr);

  /// Feeds one scan through sanitize -> reorder -> rate-limit -> tracker.
  /// Never throws on malformed input.
  IngestResult submit(const rf::WifiScan& scan);

  /// Releases every buffered scan to the tracker (end of trip, or before
  /// a query that must see the full stream). Returns the fixes produced.
  std::vector<Fix> flush();

  std::size_t buffered() const { return buffer_.size(); }
  const IngestStats& stats() const { return stats_; }

 private:
  struct Pending {
    rf::WifiScan scan;
    std::uint64_t seq;
  };

  /// Validates and cleans one scan in place (updates reading-drop
  /// counters). Returns the reject reason, or RejectReason::none when
  /// the scan should enter the buffer.
  RejectReason sanitize(rf::WifiScan& scan);

  /// Pops the earliest buffered scan into the tracker. Returns the fix,
  /// if one was produced.
  std::optional<Fix> release_front();

  /// Mirrors a stats_ bump into the shared obs counters.
  void count_reject(RejectReason reason);

  BusTracker* tracker_;
  const svd::PositioningIndex* index_;
  IngestGuardParams params_;
  const GuardMetrics* metrics_;
  IngestStats stats_;
  std::vector<Pending> buffer_;  ///< sorted by scan time, ascending
  double watermark_ = 0.0;       ///< time of the last released scan
  bool any_released_ = false;
  std::uint64_t next_seq_ = 0;
  RejectReason last_release_outcome_ = RejectReason::none;
};

}  // namespace wiloc::core
