#include "core/hybrid.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace wiloc::core {

HybridTracker::HybridTracker(const roadnet::BusRoute& route,
                             const svd::PositioningIndex& index,
                             HybridTrackerParams params)
    : route_(&route),
      positioner_(index, params.positioner),
      filter_(params.filter),
      params_(params) {
  WILOC_EXPECTS(params_.gps_after_misses >= 1);
}

std::optional<Fix> HybridTracker::ingest_wifi(const rf::WifiScan& scan) {
  ++ledger_.wifi_scans;
  ledger_.total_mj += params_.energy.wifi_scan_mj;

  const auto candidates = positioner_.locate(scan);
  if (candidates.empty()) {
    ++wifi_miss_streak_;
    // Let the filter coast (it needs the time update), but a coasted
    // fix does not clear the miss streak.
    const auto fix = filter_.update(scan.time, candidates);
    if (fix.has_value()) fixes_.push_back(*fix);
    return std::nullopt;
  }
  wifi_miss_streak_ = 0;
  const auto fix = filter_.update(scan.time, candidates);
  if (fix.has_value()) fixes_.push_back(*fix);
  return fix;
}

bool HybridTracker::gps_wanted() const {
  return wifi_miss_streak_ >= params_.gps_after_misses;
}

std::optional<Fix> HybridTracker::ingest_gps(
    SimTime t, std::optional<geo::Point> position) {
  ++ledger_.gps_fixes;
  ledger_.total_mj += params_.energy.gps_fix_mj;

  std::vector<svd::Candidate> candidates;
  if (position.has_value()) {
    const auto proj = route_->project(*position);
    const double score =
        std::clamp(1.0 / (1.0 + proj.distance / 25.0), 0.0, 1.0);
    candidates.push_back({proj.route_offset, score});
    // A usable GPS fix stands in for WiFi: stop waking the receiver
    // once the filter is fed again.
    wifi_miss_streak_ = 0;
  }
  const auto fix = filter_.update(t, candidates);
  if (fix.has_value()) fixes_.push_back(*fix);
  return fix;
}

}  // namespace wiloc::core
