#include "core/mobility_filter.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace wiloc::core {

MobilityFilter::MobilityFilter(MobilityFilterParams params)
    : params_(params) {
  WILOC_EXPECTS(params_.max_speed_mps > 0.0);
  WILOC_EXPECTS(params_.distance_scale_m > 0.0);
  WILOC_EXPECTS(params_.speed_smoothing > 0.0 &&
                params_.speed_smoothing <= 1.0);
}

std::optional<Fix> MobilityFilter::last_fix() const {
  if (!has_fix_) return std::nullopt;
  return last_;
}

void MobilityFilter::reset() {
  has_fix_ = false;
  last_ = {};
  speed_mps_ = 0.0;
  coast_streak_ = 0;
}

std::optional<Fix> MobilityFilter::update(
    SimTime t, const std::vector<svd::Candidate>& candidates) {
  if (!has_fix_) {
    // Acquisition: trust the best-matching candidate outright.
    if (candidates.empty()) return std::nullopt;
    last_ = {t, candidates.front().route_offset,
             candidates.front().score};
    has_fix_ = true;
    coast_streak_ = 0;
    return last_;
  }

  const double dt = std::max(t - last_.time, 0.0);
  const double predicted = last_.route_offset + speed_mps_ * dt;
  // The backward gate widens with every coasted scan: a coast means the
  // estimate may have dead-reckoned ahead of the bus, so admissible
  // candidates must be allowed further behind it.
  const double back_slack =
      params_.backward_slack_m *
      (1.0 + 2.0 * static_cast<double>(coast_streak_));
  const double reach_lo = last_.route_offset - back_slack;
  const double reach_hi =
      last_.route_offset + params_.max_speed_mps * dt +
      params_.backward_slack_m;

  const svd::Candidate* best = nullptr;
  double best_score = -1.0;
  for (const svd::Candidate& c : candidates) {
    if (c.route_offset < reach_lo || c.route_offset > reach_hi) continue;
    const double dist_penalty =
        std::abs(c.route_offset - predicted) / params_.distance_scale_m;
    const double score =
        c.score - params_.prediction_weight * dist_penalty;
    if (score > best_score) {
      best_score = score;
      best = &c;
    }
  }

  if (best == nullptr) {
    ++coast_streak_;
    if (coast_streak_ > params_.max_coast_scans && !candidates.empty()) {
      // Lost: re-acquire from the strongest unconstrained candidate.
      last_ = {t, candidates.front().route_offset,
               candidates.front().score * 0.5};
      speed_mps_ = 0.0;
      coast_streak_ = 0;
      return last_;
    }
    // Coast on the dead-reckoned position with decaying confidence and
    // decaying speed (a silent bus is more likely stopped than cruising).
    last_ = {t, predicted, last_.confidence * 0.6, /*degraded=*/true};
    speed_mps_ *= 0.6;
    return last_;
  }

  // Accept: fuse the measurement with the dead-reckoned prediction.
  // Tile-quantized measurements carry tens of meters of noise; the blend
  // (a fixed-gain 1D Kalman) suppresses it once speed is being tracked.
  // The mobility constraint acts through the admissibility gate above;
  // the estimate itself may step back a little (the *estimate* can be
  // ahead of the bus, e.g. after dead-reckoning through a dwell).
  // Adaptive gain: an exact-signature candidate (score 1) is trusted
  // almost outright; weak fallback matches lean on dead reckoning.
  const double gain =
      speed_mps_ > 0.0
          ? std::clamp(params_.measurement_gain * (0.55 + 0.45 * best->score),
                       0.0, 0.95)
          : 1.0;
  const double fused = std::clamp(
      predicted + gain * (best->route_offset - predicted), reach_lo,
      reach_hi);
  if (dt > 0.0) {
    const double inst_speed = std::clamp(
        (fused - last_.route_offset) / dt, 0.0, params_.max_speed_mps);
    speed_mps_ = speed_mps_ +
                 params_.speed_smoothing * (inst_speed - speed_mps_);
  }
  last_ = {t, fused, std::clamp(best->score, 0.0, 1.0)};
  coast_streak_ = 0;
  return last_;
}

}  // namespace wiloc::core
