// Umbrella header: the WiLocator public API.
//
// #include "core/wilocator.hpp" pulls in the full framework — SVD
// construction, positioning, tracking, prediction, traffic maps — plus
// the substrates (road network, RF, simulation is separate in sim/).
#pragma once

#include "core/anomaly.hpp"             // IWYU pragma: export
#include "core/hybrid.hpp"              // IWYU pragma: export
#include "core/mobility_filter.hpp"     // IWYU pragma: export
#include "core/positioner.hpp"          // IWYU pragma: export
#include "core/predictor.hpp"           // IWYU pragma: export
#include "core/rider_matcher.hpp"      // IWYU pragma: export
#include "core/route_identifier.hpp"    // IWYU pragma: export
#include "core/seasonal.hpp"            // IWYU pragma: export
#include "core/server.hpp"              // IWYU pragma: export
#include "core/tracker.hpp"             // IWYU pragma: export
#include "core/traffic_map.hpp"         // IWYU pragma: export
#include "core/training.hpp"            // IWYU pragma: export
#include "core/trajectory.hpp"          // IWYU pragma: export
#include "core/travel_time.hpp"         // IWYU pragma: export
#include "core/trip_planner.hpp"        // IWYU pragma: export
#include "svd/grid_svd.hpp"             // IWYU pragma: export
#include "svd/route_svd.hpp"            // IWYU pragma: export
#include "svd/survey.hpp"               // IWYU pragma: export
#include "svd/tile_mapper.hpp"          // IWYU pragma: export
