// Hybrid WiFi/GPS tracking with an energy ledger.
//
// The paper's future work: "when a smartphone scans no WiFi information
// for a while, the GPS module is activated so that the system can
// adaptively work from WiFi-coverage areas to GPS viable environments."
// This tracker runs the normal SVD pipeline on WiFi scans, counts the
// scans that produced no usable candidates, and — past a threshold —
// requests GPS fixes until WiFi recovers. An energy ledger charges each
// sensor action (GPS is an order of magnitude costlier per fix than a
// WiFi scan), reproducing the energy-accuracy tradeoff the paper's
// Section II surveys (EnLoc [7], rate-adaptive GPS [14]).
#pragma once

#include <optional>

#include "core/mobility_filter.hpp"
#include "core/positioner.hpp"
#include "roadnet/route.hpp"

namespace wiloc::core {

/// Per-action sensing cost in millijoules (smartphone-scale figures).
struct EnergyModel {
  double wifi_scan_mj = 12.0;
  double gps_fix_mj = 165.0;
};

/// Sensing totals for a trip.
struct EnergyLedger {
  std::size_t wifi_scans = 0;
  std::size_t gps_fixes = 0;
  double total_mj = 0.0;
};

struct HybridTrackerParams {
  std::size_t gps_after_misses = 2;  ///< dead WiFi scans before GPS wakes
  MobilityFilterParams filter;
  PositionerParams positioner;
  EnergyModel energy;
};

/// Adaptive WiFi-first tracker. Drive it per scan period:
///   1. ingest_wifi(scan)          — always (phones scan regardless);
///   2. if gps_wanted(), obtain a GPS sample and call ingest_gps(...).
class HybridTracker {
 public:
  /// `route` and `index` must outlive the tracker.
  HybridTracker(const roadnet::BusRoute& route,
                const svd::PositioningIndex& index,
                HybridTrackerParams params = {});

  /// Processes one WiFi scan (charges the scan energy). Returns the fix
  /// when WiFi evidence sufficed.
  std::optional<Fix> ingest_wifi(const rf::WifiScan& scan);

  /// True when WiFi has been silent/unusable long enough that the GPS
  /// module should be powered for the next sample.
  bool gps_wanted() const;

  /// Feeds a GPS fix (nullopt = GPS outage; energy is charged either
  /// way, the receiver was on). Returns the filtered fix if any.
  std::optional<Fix> ingest_gps(SimTime t,
                                std::optional<geo::Point> position);

  const EnergyLedger& energy() const { return ledger_; }
  const std::vector<Fix>& fixes() const { return fixes_; }
  std::optional<Fix> last_fix() const { return filter_.last_fix(); }

 private:
  const roadnet::BusRoute* route_;
  SvdPositioner positioner_;
  MobilityFilter filter_;
  HybridTrackerParams params_;
  EnergyLedger ledger_;
  std::vector<Fix> fixes_;
  std::size_t wifi_miss_streak_ = 0;
};

}  // namespace wiloc::core
