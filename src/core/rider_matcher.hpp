// Rider-to-bus assignment (paper Section V-A1).
//
// "The bus riders, close to the driver by proximity, have approximately
// the same trajectory, therefore we can easily determine which bus the
// riders are on." A rider's phone reports anonymous scans; the server
// must decide which tracked bus the rider is riding before their scans
// can strengthen that bus's track. The matcher locates each rider scan
// on every candidate bus's route and scores agreement with the bus's
// tracked position at the same instant; consistent agreement over a few
// scans is decisive.
#pragma once

#include <optional>
#include <vector>

#include "core/server.hpp"

namespace wiloc::core {

struct RiderMatcherParams {
  double agree_distance_m = 120.0;  ///< rider fix within this of the bus
                                    ///< counts as agreement
  std::size_t min_scans = 3;        ///< evidence needed to decide
  double decisive_margin = 0.25;    ///< mean-score lead over the runner-up
};

/// Online matcher for one anonymous rider against the live fleet.
class RiderMatcher {
 public:
  /// `server` must outlive the matcher. `candidates` are the trips the
  /// rider could plausibly be on (e.g. every active trip); they must be
  /// registered with the server.
  RiderMatcher(const WiLocatorServer& server,
               std::vector<roadnet::TripId> candidates,
               RiderMatcherParams params = {});

  /// Feeds one rider scan (time-ordered). Scores each candidate by
  /// whether the scan, located on that candidate's route, lands near the
  /// candidate's tracked position at scan time.
  void ingest(const rf::WifiScan& scan);

  /// Mean agreement score per candidate (aligned with candidates()).
  std::vector<double> scores() const;

  const std::vector<roadnet::TripId>& candidates() const {
    return candidates_;
  }

  /// The matched trip, or nullopt while ambiguous.
  std::optional<roadnet::TripId> decision() const;

  std::size_t scans_seen() const { return scans_; }

 private:
  const WiLocatorServer* server_;
  std::vector<roadnet::TripId> candidates_;
  RiderMatcherParams params_;
  std::vector<double> score_sums_;
  std::size_t scans_ = 0;
};

}  // namespace wiloc::core
