#include "core/rider_matcher.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace wiloc::core {

RiderMatcher::RiderMatcher(const WiLocatorServer& server,
                           std::vector<roadnet::TripId> candidates,
                           RiderMatcherParams params)
    : server_(&server),
      candidates_(std::move(candidates)),
      params_(params) {
  WILOC_EXPECTS(!candidates_.empty());
  WILOC_EXPECTS(params_.agree_distance_m > 0.0);
  score_sums_.assign(candidates_.size(), 0.0);
}

void RiderMatcher::ingest(const rf::WifiScan& scan) {
  ++scans_;
  if (scan.empty()) return;
  const auto ranked = scan.ranked_aps();
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    const roadnet::TripId trip = candidates_[i];
    if (!server_->has_trip(trip)) continue;
    const auto bus_offset = server_->position(trip);
    if (!bus_offset.has_value()) continue;
    // Locate the rider's scan on this candidate's route.
    const auto& tracker = server_->tracker(trip);
    const auto& route = tracker.route();
    const auto& index = server_->index_for(route.id());
    const auto located = index.locate(ranked);
    if (located.empty()) continue;
    // Best agreement over the candidates the scan could mean.
    double best = 0.0;
    for (const auto& candidate : located) {
      const double gap = std::abs(candidate.route_offset - *bus_offset);
      if (gap <= params_.agree_distance_m) {
        const double proximity = 1.0 - gap / params_.agree_distance_m;
        best = std::max(best, candidate.score * (0.5 + 0.5 * proximity));
      }
    }
    score_sums_[i] += best;
  }
}

std::vector<double> RiderMatcher::scores() const {
  std::vector<double> out(candidates_.size(), 0.0);
  if (scans_ == 0) return out;
  for (std::size_t i = 0; i < candidates_.size(); ++i)
    out[i] = score_sums_[i] / static_cast<double>(scans_);
  return out;
}

std::optional<roadnet::TripId> RiderMatcher::decision() const {
  if (scans_ < params_.min_scans) return std::nullopt;
  const auto s = scores();
  std::size_t best = 0;
  for (std::size_t i = 1; i < s.size(); ++i)
    if (s[i] > s[best]) best = i;
  if (s[best] <= 0.0) return std::nullopt;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i == best) continue;
    if (s[best] - s[i] < params_.decisive_margin) return std::nullopt;
  }
  return candidates_[best];
}

}  // namespace wiloc::core
