// The mobility constraint as an online filter.
//
// A bus follows its route and cannot jump backwards or teleport: among
// the positioner's candidates, only those reachable from the last fix at
// a plausible bus speed are admissible (paper Section III-B — "the bus
// must travel on the road segment", narrowing the SVD estimate). The
// filter blends candidate match scores with kinematic plausibility,
// coasts through scans with no admissible candidate, and re-acquires
// after a losing streak.
#pragma once

#include <optional>

#include "svd/positioning_index.hpp"
#include "util/time.hpp"

namespace wiloc::core {

/// One filtered position estimate.
struct Fix {
  SimTime time = 0.0;
  double route_offset = 0.0;
  double confidence = 0.0;  ///< [0, 1]; coasted fixes decay
  bool degraded = false;    ///< dead-reckoned only: the scan produced no
                            ///< admissible SVD candidate (empty scan, all
                            ///< APs churned away, or kinematically
                            ///< implausible matches)
};

struct MobilityFilterParams {
  double max_speed_mps = 22.0;       ///< admissibility gate
  double backward_slack_m = 30.0;    ///< tolerated backward jitter
  double prediction_weight = 0.35;   ///< pull toward the dead-reckoned
                                     ///< position when scoring candidates
  double distance_scale_m = 120.0;   ///< normalizes the distance penalty
  std::size_t max_coast_scans = 4;   ///< misses before re-acquisition
  double speed_smoothing = 0.30;     ///< EWMA factor for speed tracking
  double measurement_gain = 0.90;    ///< Kalman-style blend: how far the
                                     ///< fix moves from the dead-reckoned
                                     ///< position toward the measurement
};

/// Stateful per-trip filter. Feed it every scan's candidates in time
/// order; it emits at most one fix per update.
class MobilityFilter {
 public:
  explicit MobilityFilter(MobilityFilterParams params = {});

  /// Processes one scan's candidates. Returns the fix, or nullopt when
  /// the scan was empty and there is nothing to coast from.
  std::optional<Fix> update(SimTime t,
                            const std::vector<svd::Candidate>& candidates);

  /// The last emitted fix, if any.
  std::optional<Fix> last_fix() const;

  /// Smoothed along-route speed estimate (m/s); 0 before two fixes.
  double speed_estimate() const { return speed_mps_; }

  /// Drops all state (new trip).
  void reset();

 private:
  MobilityFilterParams params_;
  bool has_fix_ = false;
  Fix last_{};
  double speed_mps_ = 0.0;
  std::size_t coast_streak_ = 0;
};

}  // namespace wiloc::core
