#include "core/seasonal.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/journal.hpp"

namespace wiloc::core {

SeasonalIndexAnalyzer::SeasonalIndexAnalyzer(std::size_t slots_per_day)
    : slots_per_day_(slots_per_day) {
  WILOC_EXPECTS(slots_per_day >= 1);
}

void SeasonalIndexAnalyzer::add(roadnet::EdgeId edge, double tod,
                                double travel_time) {
  WILOC_EXPECTS(tod >= 0.0 && tod < kSecondsPerDay);
  WILOC_EXPECTS(travel_time > 0.0);
  auto& slots = per_edge_[edge];
  if (slots.empty()) slots.resize(slots_per_day_);
  const auto slot = std::min(
      static_cast<std::size_t>(tod / kSecondsPerDay *
                               static_cast<double>(slots_per_day_)),
      slots_per_day_ - 1);
  slots[slot].add(travel_time);
}

std::optional<double> SeasonalIndexAnalyzer::seasonal_index(
    roadnet::EdgeId edge, std::size_t slot) const {
  WILOC_EXPECTS(slot < slots_per_day_);
  const auto it = per_edge_.find(edge);
  if (it == per_edge_.end() || it->second[slot].empty())
    return std::nullopt;

  double sum_of_means = 0.0;
  std::size_t slots_with_data = 0;
  for (const RunningStats& s : it->second) {
    if (!s.empty()) {
      sum_of_means += s.mean();
      ++slots_with_data;
    }
  }
  if (slots_with_data == 0) return std::nullopt;
  const double overall = sum_of_means / static_cast<double>(slots_with_data);
  if (overall <= 0.0) return std::nullopt;
  return it->second[slot].mean() / overall;
}

std::vector<double> SeasonalIndexAnalyzer::profile(
    roadnet::EdgeId edge) const {
  std::vector<double> out(slots_per_day_, 1.0);
  for (std::size_t l = 0; l < slots_per_day_; ++l) {
    if (const auto si = seasonal_index(edge, l); si.has_value())
      out[l] = *si;
  }
  return out;
}

bool SeasonalIndexAnalyzer::has_periodicity(roadnet::EdgeId edge,
                                            double threshold) const {
  const auto prof = profile(edge);
  return std::any_of(prof.begin(), prof.end(),
                     [&](double si) { return si >= threshold; });
}

DaySlots SeasonalIndexAnalyzer::merge_profile(const std::vector<double>& si,
                                              double tolerance) const {
  WILOC_EXPECTS(tolerance >= 0.0);
  std::vector<double> interior;  // group boundaries strictly inside the day
  double group_sum = si.front();
  std::size_t group_n = 1;
  std::optional<double> first_group_mean;
  for (std::size_t l = 1; l < si.size(); ++l) {
    const double group_mean = group_sum / static_cast<double>(group_n);
    if (std::abs(si[l] - group_mean) > tolerance) {
      if (!first_group_mean.has_value()) first_group_mean = group_mean;
      interior.push_back(kSecondsPerDay * static_cast<double>(l) /
                         static_cast<double>(si.size()));
      group_sum = si[l];
      group_n = 1;
    } else {
      group_sum += si[l];
      ++group_n;
    }
  }
  if (interior.empty())  // one group: the whole day is one slot
    return DaySlots::from_boundaries({0.0, kSecondsPerDay});

  // Time-of-day is cyclic: the group ending at midnight is adjacent to
  // the one starting at midnight. When their means agree, the 0/86400
  // boundary is not a real regime change — merge across it into a
  // wrapped slot (quiet night hours become one slot, as the paper's
  // grouping intends).
  const double last_group_mean = group_sum / static_cast<double>(group_n);
  if (std::abs(last_group_mean - *first_group_mean) <= tolerance) {
    if (interior.size() == 1)  // both day-edge groups merge: one cycle
      return DaySlots::from_boundaries({0.0, kSecondsPerDay});
    return DaySlots::from_boundaries_wrapped(interior);
  }

  std::vector<double> bounds{0.0};
  bounds.insert(bounds.end(), interior.begin(), interior.end());
  bounds.push_back(kSecondsPerDay);
  return DaySlots::from_boundaries(bounds);
}

DaySlots SeasonalIndexAnalyzer::merged_slots(roadnet::EdgeId edge,
                                             double tolerance) const {
  return merge_profile(profile(edge), tolerance);
}

DaySlots SeasonalIndexAnalyzer::merged_slots_network(double tolerance) const {
  std::vector<double> averaged(slots_per_day_, 0.0);
  std::vector<std::size_t> counts(slots_per_day_, 0);
  for (const auto& [edge, slots] : per_edge_) {
    for (std::size_t l = 0; l < slots_per_day_; ++l) {
      if (const auto si = seasonal_index(edge, l); si.has_value()) {
        averaged[l] += *si;
        ++counts[l];
      }
    }
  }
  for (std::size_t l = 0; l < slots_per_day_; ++l)
    averaged[l] = counts[l] > 0
                      ? averaged[l] / static_cast<double>(counts[l])
                      : 1.0;
  return merge_profile(averaged, tolerance);
}

namespace {
constexpr std::uint8_t kSeasonalFormatVersion = 1;
constexpr std::uint32_t kSeasonalSnapshotMagic = 0x49534c57;  // "WLSI"
}  // namespace

void SeasonalIndexAnalyzer::save(BinWriter& w) const {
  w.put_u8(kSeasonalFormatVersion);
  w.put_u64(slots_per_day_);
  w.put_u64(per_edge_.size());
  for (const auto& [edge, slots] : per_edge_) {
    w.put_u32(edge.value());
    for (const RunningStats& s : slots) encode_stats(w, s);
  }
}

void SeasonalIndexAnalyzer::restore(BinReader& r) {
  const std::uint8_t version = r.get_u8();
  if (version != kSeasonalFormatVersion)
    throw DecodeError(
        "SeasonalIndexAnalyzer: unknown snapshot format version " +
        std::to_string(version));
  const std::uint64_t slots_per_day = r.get_u64();
  if (slots_per_day == 0 || slots_per_day > 100000)
    throw DecodeError("SeasonalIndexAnalyzer: implausible slot count " +
                      std::to_string(slots_per_day));
  decltype(per_edge_) per_edge;
  const std::uint64_t edges = r.get_u64();
  for (std::uint64_t i = 0; i < edges; ++i) {
    const roadnet::EdgeId edge(r.get_u32());
    auto& slots = per_edge[edge];
    slots.reserve(slots_per_day);
    for (std::uint64_t l = 0; l < slots_per_day; ++l)
      slots.push_back(decode_stats(r));
  }
  slots_per_day_ = static_cast<std::size_t>(slots_per_day);
  per_edge_ = std::move(per_edge);
}

void SeasonalIndexAnalyzer::save_snapshot(const std::string& path) const {
  BinWriter w;
  save(w);
  journal::write_snapshot_file(path, kSeasonalSnapshotMagic, 1, w.bytes(),
                               /*do_fsync=*/true);
}

bool SeasonalIndexAnalyzer::restore_snapshot(const std::string& path) {
  const auto data = journal::read_snapshot_file(path, kSeasonalSnapshotMagic);
  if (!data.has_value()) return false;
  BinReader r(data->body);
  restore(r);
  return true;
}

std::vector<roadnet::EdgeId> SeasonalIndexAnalyzer::observed_edges() const {
  std::vector<roadnet::EdgeId> out;
  out.reserve(per_edge_.size());
  for (const auto& [edge, slots] : per_edge_) out.push_back(edge);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace wiloc::core
