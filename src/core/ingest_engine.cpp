#include "core/ingest_engine.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace wiloc::core {

namespace {

// splitmix64 finalizer: sequential trip ids must spread across shards.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

IngestEngine::IngestEngine(MobilityFilterParams filter,
                           IngestGuardParams guard,
                           IngestEngineParams params, ObsHooks hooks)
    : filter_params_(filter),
      guard_params_(guard),
      params_(params),
      hooks_(hooks) {
  WILOC_EXPECTS(params_.queue_capacity >= 1);
  const std::size_t n = params_.workers == 0 ? 1 : params_.workers;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<Shard>());
  if (obs::Registry* reg = hooks_.registry) {
    guard_metrics_ = GuardMetrics::registered(*reg);
    m_enqueued_ = &reg->counter("engine.enqueued");
    m_processed_ = &reg->counter("engine.processed");
    m_backpressure_ = &reg->counter("engine.rejected_backpressure");
    m_observations_ = &reg->counter("engine.observations");
    m_queue_depth_ = &reg->histogram(
        "engine.queue_depth", 0.0,
        static_cast<double>(params_.queue_capacity), 32);
    m_latency_us_ = &reg->histogram("engine.latency_us", 0.0, 5000.0, 50);
    for (std::size_t i = 0; i < shards_.size(); ++i)
      shards_[i]->depth_gauge = &reg->gauge(
          "engine.shard" + std::to_string(i) + ".queue_depth");
  }
  if (threaded()) {
    for (auto& shard : shards_) {
      Shard& s = *shard;
      s.worker = std::thread([this, &s] { worker_loop(s); });
    }
  }
}

IngestEngine::~IngestEngine() {
  // Drain-on-shutdown: workers exit only once their queue is empty.
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->queue_mu);
      shard->stop = true;
    }
    shard->cv_work.notify_all();
  }
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
}

void IngestEngine::bind_route(roadnet::RouteId id, RouteBinding binding) {
  WILOC_EXPECTS(binding.route != nullptr);
  WILOC_EXPECTS(binding.index != nullptr);
  WILOC_EXPECTS(binding.positioner != nullptr);
  routes_.emplace(id, binding);
}

IngestEngine::Shard& IngestEngine::shard_of(roadnet::TripId trip) {
  return *shards_[mix(trip.value()) % shards_.size()];
}

const IngestEngine::Shard& IngestEngine::shard_of(
    roadnet::TripId trip) const {
  return *shards_[mix(trip.value()) % shards_.size()];
}

// -- submission ----------------------------------------------------------

bool IngestEngine::enqueue(Shard& shard, Job&& job) {
  std::unique_lock<std::mutex> lock(shard.queue_mu);
  if (shard.queue.size() >= params_.queue_capacity) {
    const bool block = params_.block_on_full || job.kind != JobKind::scan ||
                       job.slot != nullptr;
    if (!block) return false;  // backpressure: caller counts the drop
    shard.cv_room.wait(lock, [&] {
      return shard.queue.size() < params_.queue_capacity;
    });
  }
  const std::uint64_t seq = job.seq;
  shard.queue.push_back(std::move(job));
  ++shard.enqueued;
  if (m_queue_depth_ != nullptr) {
    const auto depth = static_cast<double>(shard.queue.size());
    m_queue_depth_->record(depth);
    shard.depth_gauge->set(depth);
  }
  // An idle shard's frontier snaps down to the new head-of-queue. A busy
  // worker's frontier is already below any freshly assigned seq.
  if (seq < shard.frontier.load(std::memory_order_relaxed))
    shard.frontier.store(seq, std::memory_order_release);
  shard.cv_work.notify_one();
  return true;
}

IngestResult IngestEngine::ingest(roadnet::TripId trip,
                                  const rf::WifiScan& scan) {
  Job job;
  job.kind = JobKind::scan;
  job.trip = trip;
  job.scan = scan;
  SyncSlot slot;
  job.slot = &slot;
  run_sync(std::move(job));
  return slot.result;
}

BatchIngestResult IngestEngine::ingest_batch(
    std::span<const ScanSubmission> batch) {
  BatchIngestResult out;
  out.submitted = batch.size();
  std::lock_guard<std::mutex> seq_lock(submit_mu_);
  for (const ScanSubmission& sub : batch) {
    Job job;
    job.kind = JobKind::scan;
    job.trip = sub.trip;
    job.scan = sub.scan;
    job.seq = next_seq_++;
    if (params_.record_latency) job.enqueued_at = Clock::now();
    Shard& shard = shard_of(sub.trip);
    if (!threaded()) {
      if (m_enqueued_ != nullptr) m_enqueued_->inc();
      process(shard, job);
      ++out.enqueued;
    } else if (enqueue(shard, std::move(job))) {
      if (m_enqueued_ != nullptr) m_enqueued_->inc();
      ++out.enqueued;
    } else {
      if (m_backpressure_ != nullptr) m_backpressure_->inc();
      ++out.rejected_backpressure;
    }
  }
  return out;
}

void IngestEngine::run_sync(Job job) {
  SyncSlot local;
  if (job.slot == nullptr) job.slot = &local;
  SyncSlot& slot = *job.slot;
  Shard& shard = shard_of(job.trip);
  if (m_enqueued_ != nullptr && job.kind == JobKind::scan) m_enqueued_->inc();
  if (!threaded()) {
    {
      std::lock_guard<std::mutex> seq_lock(submit_mu_);
      job.seq = next_seq_++;
    }
    if (params_.record_latency && job.kind == JobKind::scan)
      job.enqueued_at = Clock::now();
    process(shard, job);
    slot.done = true;
  } else {
    {
      std::lock_guard<std::mutex> seq_lock(submit_mu_);
      job.seq = next_seq_++;
      if (params_.record_latency && job.kind == JobKind::scan)
        job.enqueued_at = Clock::now();
      enqueue(shard, std::move(job));  // sync jobs always block for room
    }
    std::unique_lock<std::mutex> lock(shard.queue_mu);
    shard.cv_done.wait(lock, [&] { return slot.done; });
  }
  if (slot.error == 1) throw NotFound(slot.message);
  if (slot.error == 2) throw StateError(slot.message);
}

void IngestEngine::begin_trip(roadnet::TripId trip, roadnet::RouteId route) {
  Job job;
  job.kind = JobKind::begin;
  job.trip = trip;
  job.route = route;
  run_sync(std::move(job));
}

void IngestEngine::end_trip(roadnet::TripId trip) {
  Job job;
  job.kind = JobKind::end;
  job.trip = trip;
  run_sync(std::move(job));
}

void IngestEngine::flush_trip(roadnet::TripId trip) {
  Job job;
  job.kind = JobKind::flush;
  job.trip = trip;
  run_sync(std::move(job));
}

// -- worker --------------------------------------------------------------

void IngestEngine::worker_loop(Shard& shard) {
  std::vector<Job> batch;
  const std::size_t max_batch = std::max<std::size_t>(1, params_.max_batch);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(shard.queue_mu);
      shard.cv_work.wait(lock,
                         [&] { return shard.stop || !shard.queue.empty(); });
      if (shard.queue.empty()) {
        if (shard.stop) return;
        continue;
      }
      // Drain up to max_batch jobs; the cap bounds how long one batch
      // can hold the shard state lock (queries, sync submissions).
      batch.clear();
      while (!shard.queue.empty() && batch.size() < max_batch) {
        batch.push_back(std::move(shard.queue.front()));
        shard.queue.pop_front();
      }
      if (shard.depth_gauge != nullptr)
        shard.depth_gauge->set(static_cast<double>(shard.queue.size()));
      shard.frontier.store(batch.front().seq, std::memory_order_release);
      shard.cv_room.notify_all();
    }
    {
      // One state-lock acquisition per batch: consecutive scans of the
      // same shard share the guard/tracker cachelines and the
      // thread-local locate scratch (posting-list stamps, candidate
      // sets, memo) without re-locking per job. Lock order is
      // state_mu -> queue_mu (sync-slot signaling); no other path takes
      // them in the reverse order.
      std::lock_guard<std::mutex> state_lock(shard.state_mu);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        process_locked(shard, batch[i]);
        // Advance the frontier past the finished job so its observations
        // become publishable; the release store pairs with the acquire
        // load in take_ready_observations.
        if (i + 1 < batch.size())
          shard.frontier.store(batch[i + 1].seq, std::memory_order_release);
        if (batch[i].slot != nullptr) {
          std::lock_guard<std::mutex> lock(shard.queue_mu);
          batch[i].slot->done = true;
          shard.cv_done.notify_all();
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(shard.queue_mu);
      shard.processed += batch.size();
      shard.frontier.store(
          shard.queue.empty() ? kIdle : shard.queue.front().seq,
          std::memory_order_release);
      shard.cv_done.notify_all();
    }
  }
}

void IngestEngine::process(Shard& shard, Job& job) {
  std::lock_guard<std::mutex> lock(shard.state_mu);
  process_locked(shard, job);
}

void IngestEngine::process_locked(Shard& shard, Job& job) {
  switch (job.kind) {
    case JobKind::scan: {
      const IngestResult result = process_scan(shard, job);
      if (job.slot != nullptr) job.slot->result = result;
      if (m_processed_ != nullptr) m_processed_->inc();
      if (params_.record_latency) {
        const double dt_s =
            std::chrono::duration<double>(Clock::now() - job.enqueued_at)
                .count();
        shard.latencies_s.push_back(dt_s);
        if (m_latency_us_ != nullptr) m_latency_us_->record(dt_s * 1e6);
      }
      break;
    }
    case JobKind::begin: {
      const auto rb = routes_.find(job.route);
      if (rb == routes_.end()) {
        job.slot->error = 1;
        job.slot->message =
            "unknown route " + std::to_string(job.route.value());
        break;
      }
      if (shard.trips.count(job.trip) != 0) {
        job.slot->error = 2;
        job.slot->message = "trip " + std::to_string(job.trip.value()) +
                            " already registered";
        break;
      }
      TripRuntime tr;
      tr.route = job.route;
      tr.tracker = std::make_unique<BusTracker>(
          *rb->second.route, *rb->second.positioner, filter_params_);
      tr.guard = std::make_unique<IngestGuard>(
          *tr.tracker, *rb->second.index, guard_params_,
          hooks_.registry != nullptr ? &guard_metrics_ : nullptr);
      shard.trips.emplace(job.trip, std::move(tr));
      break;
    }
    case JobKind::flush:
    case JobKind::end: {
      const auto it = shard.trips.find(job.trip);
      if (it == shard.trips.end()) {
        job.slot->error = 1;
        job.slot->message =
            "unknown trip " + std::to_string(job.trip.value());
        break;
      }
      // flush works on closed trips too (buffer is empty; harmless);
      // end flushes only while the trip is still open.
      if (job.kind == JobKind::flush || it->second.active) {
        it->second.guard->flush();
        harvest(shard, job.trip, it->second, job.seq);
      }
      if (job.kind == JobKind::end) it->second.active = false;
      break;
    }
  }
}

IngestResult IngestEngine::process_scan(Shard& shard, const Job& job) {
  trace(obs::TraceStage::ingest, job.seq, job.trip, job.scan.time);
  const auto it = shard.trips.find(job.trip);
  if (it == shard.trips.end()) {
    ++shard.orphan.submitted;
    ++shard.orphan.rejected_by_reason[static_cast<std::size_t>(
        RejectReason::unknown_trip)];
    if (guard_metrics_.submitted != nullptr) {
      guard_metrics_.submitted->inc();
      guard_metrics_.count_rejected(RejectReason::unknown_trip);
    }
    return {IngestStatus::rejected, RejectReason::unknown_trip,
            std::nullopt, 0};
  }
  if (!it->second.active) {
    ++shard.orphan.submitted;
    ++shard.orphan.rejected_by_reason[static_cast<std::size_t>(
        RejectReason::closed_trip)];
    if (guard_metrics_.submitted != nullptr) {
      guard_metrics_.submitted->inc();
      guard_metrics_.count_rejected(RejectReason::closed_trip);
    }
    return {IngestStatus::rejected, RejectReason::closed_trip,
            std::nullopt, 0};
  }
  const IngestResult result = it->second.guard->submit(job.scan);
  if (result.released > 0)
    trace(obs::TraceStage::locate, job.seq, job.trip, job.scan.time);
  if (result.fix.has_value())
    trace(obs::TraceStage::fix, job.seq, job.trip, result.fix->time);
  harvest(shard, job.trip, it->second, job.seq);
  return result;
}

void IngestEngine::harvest(Shard& shard, roadnet::TripId trip_id,
                           TripRuntime& trip, std::uint64_t seq) {
  for (TravelObservation& obs : trip.tracker->drain_segments()) {
    if (m_observations_ != nullptr) m_observations_->inc();
    trace(obs::TraceStage::observe, seq, trip_id, obs.exit_time);
    shard.pending.push_back({seq, trip_id, obs});
  }
}

// -- drain & hand-off ----------------------------------------------------

void IngestEngine::drain() {
  if (!threaded()) return;
  for (auto& shard : shards_) {
    Shard& s = *shard;
    std::unique_lock<std::mutex> lock(s.queue_mu);
    s.cv_done.wait(lock, [&] {
      return s.processed == s.enqueued && s.queue.empty();
    });
  }
}

std::vector<TravelObservation> IngestEngine::take_ready_observations() {
  std::uint64_t frontier = kIdle;
  for (const auto& shard : shards_)
    frontier = std::min(frontier,
                        shard->frontier.load(std::memory_order_acquire));
  std::vector<TaggedObs> ready;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->state_mu);
    while (!shard->pending.empty() &&
           shard->pending.front().seq < frontier) {
      ready.push_back(std::move(shard->pending.front()));
      shard->pending.pop_front();
    }
  }
  // Per-shard runs are seq-ascending; a stable sort merges them into the
  // global submission order (ties = one submission yielding several
  // observations; stability keeps their tracker order).
  std::stable_sort(ready.begin(), ready.end(),
                   [](const TaggedObs& a, const TaggedObs& b) {
                     return a.seq < b.seq;
                   });
  std::vector<TravelObservation> out;
  out.reserve(ready.size());
  for (TaggedObs& tagged : ready) {
    trace(obs::TraceStage::release, tagged.seq, tagged.trip,
          tagged.obs.exit_time);
    out.push_back(tagged.obs);
  }
  return out;
}

// -- queries -------------------------------------------------------------

bool IngestEngine::has_trip(roadnet::TripId trip) const {
  const Shard& shard = shard_of(trip);
  std::lock_guard<std::mutex> lock(shard.state_mu);
  return shard.trips.count(trip) != 0;
}

roadnet::RouteId IngestEngine::route_of(roadnet::TripId trip) const {
  const Shard& shard = shard_of(trip);
  std::lock_guard<std::mutex> lock(shard.state_mu);
  const auto it = shard.trips.find(trip);
  if (it == shard.trips.end())
    throw NotFound("unknown trip " + std::to_string(trip.value()));
  return it->second.route;
}

std::optional<double> IngestEngine::position(roadnet::TripId trip) const {
  const Shard& shard = shard_of(trip);
  std::lock_guard<std::mutex> lock(shard.state_mu);
  const auto it = shard.trips.find(trip);
  if (it == shard.trips.end())
    throw NotFound("unknown trip " + std::to_string(trip.value()));
  return it->second.tracker->current_offset();
}

std::vector<Fix> IngestEngine::fixes(roadnet::TripId trip) const {
  const Shard& shard = shard_of(trip);
  std::lock_guard<std::mutex> lock(shard.state_mu);
  const auto it = shard.trips.find(trip);
  if (it == shard.trips.end())
    throw NotFound("unknown trip " + std::to_string(trip.value()));
  return it->second.tracker->fixes();
}

IngestStats IngestEngine::trip_stats(roadnet::TripId trip) const {
  const Shard& shard = shard_of(trip);
  std::lock_guard<std::mutex> lock(shard.state_mu);
  const auto it = shard.trips.find(trip);
  if (it == shard.trips.end())
    throw NotFound("unknown trip " + std::to_string(trip.value()));
  return it->second.guard->stats();
}

IngestStats IngestEngine::total_stats() const {
  IngestStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->state_mu);
    total += shard->orphan;
    for (const auto& [id, tr] : shard->trips) total += tr.guard->stats();
  }
  return total;
}

const BusTracker& IngestEngine::tracker(roadnet::TripId trip) const {
  const Shard& shard = shard_of(trip);
  std::lock_guard<std::mutex> lock(shard.state_mu);
  const auto it = shard.trips.find(trip);
  if (it == shard.trips.end())
    throw NotFound("unknown trip " + std::to_string(trip.value()));
  return *it->second.tracker;
}

std::vector<double> IngestEngine::take_latency_samples() {
  std::vector<double> out;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->state_mu);
    out.insert(out.end(), shard->latencies_s.begin(),
               shard->latencies_s.end());
    shard->latencies_s.clear();
  }
  return out;
}

}  // namespace wiloc::core
