#include "core/arrival_table.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace wiloc::core {

double wall_clock_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string encode_arrival_json(roadnet::TripId trip, std::size_t stop,
                                SimTime now, SimTime arrival) {
  std::ostringstream out;
  out << "{\"trip\":" << trip.value() << ",\"stop\":" << stop
      << ",\"now\":" << json_num(now)
      << ",\"arrival_time\":" << json_num(arrival)
      << ",\"eta_s\":" << json_num(arrival - now) << "}";
  return out.str();
}

std::string encode_traffic_map_json(const TrafficMap& map) {
  std::vector<std::pair<roadnet::EdgeId, SegmentTraffic>> segments(
      map.segments.begin(), map.segments.end());
  std::sort(segments.begin(), segments.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::ostringstream out;
  out << "{\"t\":" << json_num(map.time) << ",\"segments\":[";
  bool first = true;
  for (const auto& [edge, seg] : segments) {
    if (!first) out << ',';
    first = false;
    out << "{\"edge\":" << edge.value() << ",\"state\":\""
        << to_string(seg.state) << "\",\"z\":" << json_num(seg.z_score)
        << ",\"recent\":" << seg.recent_count
        << ",\"inferred\":" << (seg.inferred ? "true" : "false") << "}";
  }
  out << "]}";
  return out.str();
}

const TripArrivals* ArrivalSnapshot::find(roadnet::TripId trip) const {
  const auto it = trips.find(trip);
  return it != trips.end() ? it->second.get() : nullptr;
}

const TripArrivals* ArrivalSnapshot::best(roadnet::RouteId route,
                                          std::size_t stop) const {
  const auto it = route_best.find(route_stop_key(route, stop));
  return it != route_best.end() ? it->second.get() : nullptr;
}

ArrivalTable::ArrivalTable(const TravelTimeStore& store,
                           const ArrivalPredictor& predictor,
                           const TrafficMapBuilder& traffic,
                           ArrivalTableParams params)
    : store_(&store),
      predictor_(&predictor),
      traffic_(&traffic),
      params_(params) {}

void ArrivalTable::track(roadnet::TripId trip,
                         const roadnet::BusRoute* route) {
  tracked_[trip] = Tracked{route, nullptr};
  dirty_ = true;
}

void ArrivalTable::drop(roadnet::TripId trip) {
  if (tracked_.erase(trip) > 0) dirty_ = true;
}

bool ArrivalTable::remaining_changed(const roadnet::BusRoute& route,
                                     double offset,
                                     std::uint64_t seen) const {
  // The fractional remainder of the current edge is part of every
  // prediction, so the scan starts at the edge under the bus.
  const std::size_t first = route.position_at(offset).edge_index;
  const auto& edges = route.edges();
  for (std::size_t i = first; i < edges.size(); ++i)
    if (store_->edge_epoch(edges[i]) > seen) return true;
  return false;
}

std::shared_ptr<const TripArrivals> ArrivalTable::compute(
    roadnet::TripId trip, const roadnet::BusRoute& route, double offset,
    SimTime now, std::uint64_t epoch) const {
  auto out = std::make_shared<TripArrivals>();
  out->trip = trip;
  out->route = route.id();
  out->offset = offset;
  out->now = now;
  out->epoch = epoch;
  const std::size_t stops = route.stop_count();
  out->arrival.reserve(stops);
  out->body.reserve(stops);
  for (std::size_t s = 0; s < stops; ++s) {
    const SimTime at = predictor_->predict_arrival(route, offset, now, s);
    out->arrival.push_back(at);
    out->body.push_back(encode_arrival_json(trip, s, now, at));
  }
  return out;
}

void ArrivalTable::refresh(SimTime now, const PositionFn& position_of) {
  if (!params_.enabled || !store_->finalized()) return;
  const std::uint64_t epoch = store_->epoch();

  bool changed = dirty_;
  dirty_ = false;
  for (auto& [trip, t] : tracked_) {
    const std::optional<double> offset = position_of(trip);
    if (!offset.has_value()) {
      if (t.current != nullptr) {
        t.current.reset();
        changed = true;
        if (metrics_.invalidations != nullptr) metrics_.invalidations->inc();
      }
      continue;
    }
    if (t.current != nullptr && t.current->offset == *offset &&
        !remaining_changed(*t.route, *offset, t.current->epoch))
      continue;  // nothing this trip's answers depend on moved
    if (t.current != nullptr && metrics_.invalidations != nullptr)
      metrics_.invalidations->inc();
    t.current = compute(trip, *t.route, *offset, now, epoch);
    changed = true;
  }

  // Traffic body: a pure function of the learned state, so it follows
  // the store epoch, not the clock.
  if (traffic_epoch_ != epoch) {
    traffic_body_ = encode_traffic_map_json(traffic_->build(traffic_edges_,
                                                            now));
    traffic_epoch_ = epoch;
    changed = true;
  }

  if (changed) publish(now, epoch);
}

void ArrivalTable::publish(SimTime now, std::uint64_t epoch) {
  auto snap = std::make_shared<ArrivalSnapshot>();
  snap->epoch = epoch;
  snap->now = now;
  snap->built_wall_s = wall_clock_s();
  snap->traffic_body = traffic_body_;
  snap->trips.reserve(tracked_.size());
  std::size_t entries = 0;
  for (const auto& [trip, t] : tracked_) {
    if (t.current == nullptr) continue;
    snap->trips.emplace(trip, t.current);
    entries += t.current->body.size();
    for (std::size_t s = 0; s < t.current->arrival.size(); ++s) {
      const std::uint64_t key =
          ArrivalSnapshot::route_stop_key(t.current->route, s);
      auto [it, inserted] = snap->route_best.emplace(key, t.current);
      if (inserted) continue;
      const SimTime mine = t.current->arrival[s];
      const SimTime theirs = it->second->arrival[s];
      if (mine < theirs ||
          (mine == theirs && t.current->trip < it->second->trip))
        it->second = t.current;
    }
  }
  published_.store(std::move(snap), std::memory_order_release);
  if (metrics_.rebuilds != nullptr) metrics_.rebuilds->inc();
  if (metrics_.entries != nullptr)
    metrics_.entries->set(static_cast<double>(entries));
  if (metrics_.epoch != nullptr)
    metrics_.epoch->set(static_cast<double>(epoch));
}

}  // namespace wiloc::core
