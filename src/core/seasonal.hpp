// Seasonal index analysis (paper Eq. 6-7).
//
// For each road segment, SI(i, l) = T-bar(i,.,.,l) / T-bar(i,.,.,.) asks
// whether travel times in time-slot l are systematically longer than the
// segment's all-day average: SI around 1 everywhere means no periodicity,
// SI >> 1 (the paper uses >= 1.6) marks a rush hour. Consecutive hourly
// slots with similar SI are merged into bigger slots so each slot keeps
// enough samples (Section IV).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "roadnet/network.hpp"
#include "util/binio.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace wiloc::core {

class SeasonalIndexAnalyzer {
 public:
  /// `slots_per_day` is L in Eq. 6 (default: hourly).
  explicit SeasonalIndexAnalyzer(std::size_t slots_per_day = 24);

  /// Adds one observation: travel time of any route over the edge at
  /// time-of-day `tod` (seconds since midnight).
  void add(roadnet::EdgeId edge, double tod, double travel_time);

  std::size_t slots_per_day() const { return slots_per_day_; }

  /// SI(i, l); nullopt when slot l of the edge has no data. The
  /// normalizer is the unweighted mean of the per-slot means, so that
  /// sum_l SI(i, l) == L when every slot has data (Eq. 7).
  std::optional<double> seasonal_index(roadnet::EdgeId edge,
                                       std::size_t slot) const;

  /// The full SI profile of an edge; slots without data read as 1.0.
  std::vector<double> profile(roadnet::EdgeId edge) const;

  /// True when some slot's SI reaches `threshold` (the paper's
  /// periodicity test; it cites SI >= 1.6 for rush hours).
  bool has_periodicity(roadnet::EdgeId edge, double threshold = 1.3) const;

  /// Greedily merges consecutive slots whose SI differs from the running
  /// group mean by at most `tolerance` into one larger slot
  /// ("group consecutive time slots with similar seasonal index").
  DaySlots merged_slots(roadnet::EdgeId edge, double tolerance = 0.15) const;

  /// Network-level merged slots from the edge-averaged SI profile.
  DaySlots merged_slots_network(double tolerance = 0.15) const;

  /// Edges with at least one observation.
  std::vector<roadnet::EdgeId> observed_edges() const;

  // -- persistence -------------------------------------------------------

  /// Serializes the per-(edge, slot) profile accumulators into `w`.
  void save(BinWriter& w) const;
  /// Replaces this analyzer's state with one written by save(). Throws
  /// DecodeError on malformed input.
  void restore(BinReader& r);

  /// Writes the analyzer state to an atomic versioned snapshot file
  /// (temp + fsync + rename), so weeks of accumulated slot statistics
  /// survive a process restart.
  void save_snapshot(const std::string& path) const;
  /// Restores from a file written by save_snapshot(). Returns false when
  /// the file does not exist (cold start); throws DecodeError when it
  /// exists but is corrupt.
  bool restore_snapshot(const std::string& path);

 private:
  DaySlots merge_profile(const std::vector<double>& si,
                         double tolerance) const;

  std::size_t slots_per_day_;
  std::unordered_map<roadnet::EdgeId, std::vector<RunningStats>> per_edge_;
};

}  // namespace wiloc::core
