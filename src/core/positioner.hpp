// Scan -> position candidates, with tie handling.
//
// Wraps a PositioningIndex backend (planar TileMapper or route-restricted
// RouteSvd) and adds the paper's equal-rank treatment: when the scan's
// top readings tie in quantized RSS, the bus is near a tile boundary /
// joint point, so the candidates of the tied orderings are merged and the
// estimate lands on the boundary (Section III-B: points o, p, and the
// projected junction point l).
#pragma once

#include <memory>

#include "svd/positioning_index.hpp"

namespace wiloc::core {

struct PositionerParams {
  std::size_t tie_depth = 3;         ///< ranks where ties are expanded
  std::size_t max_tie_rankings = 6;  ///< expansion budget
  double merge_radius_m = 40.0;      ///< candidates this close coalesce
  std::size_t max_candidates = 8;
};

/// Stateless per-scan positioning front end.
class SvdPositioner {
 public:
  /// `index` must outlive the positioner.
  explicit SvdPositioner(const svd::PositioningIndex& index,
                         PositionerParams params = {});

  /// Candidate route offsets for one scan, sorted by descending score.
  /// Empty for an empty/unmatchable scan.
  std::vector<svd::Candidate> locate(const rf::WifiScan& scan) const;

  double route_length() const { return index_->route_length(); }

 private:
  const svd::PositioningIndex* index_;
  PositionerParams params_;
};

}  // namespace wiloc::core
