// Anomaly-site detection (paper Section V-B4, Fig. 6).
//
// When a segment is classified slow/very-slow, WiLocator localizes the
// root cause: a maximal window of a trip's trajectory where the road
// distance covered per scan period stays below delta — the bus is
// crawling. delta is learned from the segment's historical per-period
// distance (mean minus c * std). Windows that coincide with a bus stop
// or an intersection (boarding / red light) are excluded as false
// anomalies.
#pragma once

#include <vector>

#include "core/mobility_filter.hpp"
#include "roadnet/route.hpp"

namespace wiloc::core {

/// A localized anomaly: the bus crawled between these route offsets.
struct Anomaly {
  double begin_offset;
  double end_offset;
  SimTime begin_time;
  SimTime end_time;
  double duration() const { return end_time - begin_time; }
  double extent() const { return end_offset - begin_offset; }
};

struct AnomalyDetectorParams {
  double delta_fraction = 0.35;   ///< delta = fraction * typical distance
  double stop_exclusion_m = 45.0; ///< window near a stop is boarding
  double node_exclusion_m = 30.0; ///< window near an intersection is a light
  double min_duration_s = 45.0;   ///< shorter stalls are noise
  std::size_t min_points = 3;     ///< minimum stalled fixes in a window
  std::size_t smoothing_window = 3;  ///< fixes averaged per stall test:
                                     ///< SVD fixes advance in tile-sized
                                     ///< bursts, so the per-scan distance
                                     ///< is compared over a short window
};

/// Detects anomalies in one trip's fix trajectory.
class AnomalyDetector {
 public:
  /// `typical_scan_distance_m` is the historical mean road distance a bus
  /// covers per scan period on this corridor (learned from history);
  /// delta = delta_fraction * that.
  AnomalyDetector(const roadnet::BusRoute& route,
                  double typical_scan_distance_m,
                  AnomalyDetectorParams params = {});

  /// Scans the fix sequence (time-ordered) for crawl windows, excluding
  /// stops and intersections.
  std::vector<Anomaly> detect(const std::vector<Fix>& fixes) const;

  double delta() const { return delta_m_; }

 private:
  /// True when the offset window overlaps a stop or intersection zone.
  bool is_excusable(double begin_offset, double end_offset) const;

  const roadnet::BusRoute* route_;
  AnomalyDetectorParams params_;
  double delta_m_;
};

}  // namespace wiloc::core
