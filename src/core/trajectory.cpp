#include "core/trajectory.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/contracts.hpp"

namespace wiloc::core {

std::vector<GeoFix> to_geo_trajectory(const std::vector<Fix>& fixes,
                                      const roadnet::BusRoute& route,
                                      const geo::LatLonAnchor& anchor) {
  std::vector<GeoFix> out;
  out.reserve(fixes.size());
  for (const Fix& fix : fixes) {
    const geo::Point p = route.point_at(fix.route_offset);
    out.push_back({anchor.to_latlon(p), fix.time, fix.confidence});
  }
  return out;
}

void write_trajectory_csv(std::ostream& os,
                          const std::vector<GeoFix>& trajectory) {
  os << "latitude,longitude,time_s,confidence\n";
  os.precision(12);
  for (const GeoFix& fix : trajectory) {
    os << fix.position.latitude << ',' << fix.position.longitude << ','
       << fix.time << ',' << fix.confidence << '\n';
  }
}

std::vector<GeoFix> read_trajectory_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) ||
      line != "latitude,longitude,time_s,confidence")
    throw InvalidArgument("trajectory CSV: bad header");
  std::vector<GeoFix> out;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    GeoFix fix;
    char c1 = 0;
    char c2 = 0;
    char c3 = 0;
    if (!(row >> fix.position.latitude >> c1 >> fix.position.longitude >>
          c2 >> fix.time >> c3 >> fix.confidence) ||
        c1 != ',' || c2 != ',' || c3 != ',')
      throw InvalidArgument("trajectory CSV: bad row '" + line + "'");
    out.push_back(fix);
  }
  return out;
}

}  // namespace wiloc::core
