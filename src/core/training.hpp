// Offline training (paper Section V-A3).
//
// "For each road segment, the server computes the seasonal index based
// on the historical travel time, and determines whether there is a
// periodicity. If so, the server will divide the day into time-slots."
// This module runs that pipeline: feed it the historical observations,
// it discovers the slot structure via the network-wide seasonal index
// and returns a TravelTimeStore trained on the discovered slots.
#pragma once

#include <memory>
#include <vector>

#include "core/seasonal.hpp"
#include "core/travel_time.hpp"

namespace wiloc::core {

struct TrainingParams {
  std::size_t analysis_slots = 24;   ///< L in Eq. 6 (hourly)
  double merge_tolerance = 0.12;     ///< SI similarity for slot merging
  double periodicity_threshold = 1.2;  ///< SI above this = rush exists
};

/// The result of offline training: the discovered slot structure plus a
/// finalized store ready for the predictor.
struct TrainingResult {
  DaySlots slots = DaySlots::uniform(1);
  std::unique_ptr<TravelTimeStore> store;
  bool periodic = false;   ///< any segment showed rush-hour periodicity
  std::size_t segments_with_periodicity = 0;
};

/// Discovers time-of-day slots from the observations' seasonal indices
/// (falls back to a single all-day slot when nothing is periodic), then
/// loads and finalizes a store on those slots. Requires non-empty input.
TrainingResult train_from_history(
    const std::vector<TravelObservation>& observations,
    TrainingParams params = {});

}  // namespace wiloc::core
