// Bus route identification from the scan stream.
//
// The paper assumes the route is known (announcement voice capture or
// driver input — Section V-A1) and notes that Cell-ID matching fails on
// the overlapped first segments. This component goes further: it
// identifies the route from WiFi evidence alone by scoring each
// candidate route's positioning index against the scan stream — match
// quality plus forward-motion consistency. On overlapped stretches the
// scores tie (correctly: the evidence is ambiguous); the routes separate
// as soon as the bus reaches an unshared segment.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/mobility_filter.hpp"
#include "core/positioner.hpp"
#include "roadnet/route.hpp"

namespace wiloc::core {

struct RouteIdentifierParams {
  PositionerParams positioner;
  MobilityFilterParams filter;
  double decisive_margin = 0.12;  ///< mean-score lead needed to decide
  std::size_t min_scans = 5;      ///< evidence needed before deciding
};

/// Online multi-hypothesis route matcher.
class RouteIdentifier {
 public:
  /// One hypothesis: a route and its positioning index. Both must
  /// outlive the identifier.
  struct Hypothesis {
    const roadnet::BusRoute* route;
    const svd::PositioningIndex* index;
  };

  RouteIdentifier(std::vector<Hypothesis> hypotheses,
                  RouteIdentifierParams params = {});

  /// Feeds one scan (time-ordered).
  void ingest(const rf::WifiScan& scan);

  /// Per-route mean evidence score so far (aligned with hypotheses()).
  std::vector<double> scores() const;

  const std::vector<Hypothesis>& hypotheses() const { return hypotheses_; }

  /// The identified route, or nullopt while the evidence is ambiguous
  /// (fewer than min_scans scans, or the top two scores within
  /// decisive_margin).
  std::optional<roadnet::RouteId> decision() const;

  std::size_t scans_seen() const { return scans_; }

 private:
  struct Track {
    SvdPositioner positioner;
    MobilityFilter filter;
    double score_sum = 0.0;
  };

  std::vector<Hypothesis> hypotheses_;
  RouteIdentifierParams params_;
  std::vector<Track> tracks_;
  std::size_t scans_ = 0;
};

}  // namespace wiloc::core
