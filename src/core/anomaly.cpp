#include "core/anomaly.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace wiloc::core {

AnomalyDetector::AnomalyDetector(const roadnet::BusRoute& route,
                                 double typical_scan_distance_m,
                                 AnomalyDetectorParams params)
    : route_(&route),
      params_(params),
      delta_m_(params.delta_fraction * typical_scan_distance_m) {
  WILOC_EXPECTS(typical_scan_distance_m > 0.0);
  WILOC_EXPECTS(params_.delta_fraction > 0.0 && params_.delta_fraction < 1.0);
}

bool AnomalyDetector::is_excusable(double begin_offset,
                                   double end_offset) const {
  for (const roadnet::Stop& stop : route_->stops()) {
    if (stop.route_offset >= begin_offset - params_.stop_exclusion_m &&
        stop.route_offset <= end_offset + params_.stop_exclusion_m)
      return true;
  }
  for (std::size_t e = 0; e < route_->edges().size(); ++e) {
    const double boundary = route_->edge_end_offset(e);
    if (boundary >= begin_offset - params_.node_exclusion_m &&
        boundary <= end_offset + params_.node_exclusion_m &&
        boundary < route_->length() - 1e-6)
      return true;
  }
  return false;
}

std::vector<Anomaly> AnomalyDetector::detect(
    const std::vector<Fix>& fixes) const {
  std::vector<Anomaly> out;
  const std::size_t w = std::max<std::size_t>(1, params_.smoothing_window);
  if (fixes.size() <= w) return out;

  std::size_t window_start = 0;
  bool in_window = false;

  const auto close_window = [&](std::size_t last) {
    if (!in_window) return;
    in_window = false;
    const std::size_t points = last - window_start + 1;
    if (points < params_.min_points) return;
    const Fix& a = fixes[window_start];
    const Fix& b = fixes[last];
    if (b.time - a.time < params_.min_duration_s) return;
    if (is_excusable(a.route_offset, b.route_offset)) return;
    out.push_back({a.route_offset, b.route_offset, a.time, b.time});
  };

  // Windowed stall test: SVD fixes advance in tile-sized bursts, so the
  // dr(p_{i-1}, p_i) < delta test of Fig. 6 is applied to the average
  // distance over the last `w` scan periods.
  for (std::size_t i = w; i < fixes.size(); ++i) {
    const double dr =
        std::abs(fixes[i].route_offset - fixes[i - w].route_offset) /
        static_cast<double>(w);
    if (dr < delta_m_) {
      if (!in_window) {
        in_window = true;
        // The stall began at the previous fix, not `w` fixes back — a
        // window anchored in earlier free flow would graze stops or
        // intersections and be wrongly excused.
        window_start = i - 1;
      }
    } else {
      close_window(i - 1);
    }
  }
  close_window(fixes.size() - 1);
  return out;
}

}  // namespace wiloc::core
