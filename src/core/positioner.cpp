#include "core/positioner.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/contracts.hpp"

namespace wiloc::core {

namespace {

// Drops readings no downstream stage can interpret: non-finite RSSI
// (corrupt reports) and repeated AP ids (a duplicate would violate the
// RankSignature distinctness contract and abort positioning for the
// whole scan). The strongest reading of a duplicated AP wins — readings
// are sorted strongest-first, so keeping the first occurrence does it.
// A clean scan passes through untouched (same object, no copy).
const rf::WifiScan& sanitized(const rf::WifiScan& scan,
                              rf::WifiScan& storage) {
  bool dirty = false;
  std::unordered_set<rf::ApId> seen;
  seen.reserve(scan.readings.size());
  for (const rf::ApReading& r : scan.readings) {
    if (!std::isfinite(r.rssi_dbm) || !seen.insert(r.ap).second) {
      dirty = true;
      break;
    }
  }
  if (!dirty) return scan;

  storage.time = scan.time;
  storage.readings.clear();
  seen.clear();
  for (const rf::ApReading& r : scan.readings) {
    if (!std::isfinite(r.rssi_dbm)) continue;
    if (!seen.insert(r.ap).second) continue;
    storage.readings.push_back(r);
  }
  std::sort(storage.readings.begin(), storage.readings.end(),
            [](const rf::ApReading& a, const rf::ApReading& b) {
              if (a.rssi_dbm != b.rssi_dbm) return a.rssi_dbm > b.rssi_dbm;
              return a.ap < b.ap;
            });
  return storage;
}

}  // namespace

SvdPositioner::SvdPositioner(const svd::PositioningIndex& index,
                             PositionerParams params)
    : index_(&index), params_(params) {
  WILOC_EXPECTS(params_.max_candidates >= 1);
  WILOC_EXPECTS(params_.merge_radius_m >= 0.0);
}

std::vector<svd::Candidate> SvdPositioner::locate(
    const rf::WifiScan& scan) const {
  rf::WifiScan storage;
  const rf::WifiScan& clean = sanitized(scan, storage);
  const auto rankings = svd::expand_tied_rankings(
      clean, params_.tie_depth, params_.max_tie_rankings);
  if (rankings.empty()) return {};

  // Collect candidates from every tied ordering.
  std::vector<svd::Candidate> pool;
  for (const auto& ranking : rankings) {
    const auto candidates = index_->locate(ranking);
    pool.insert(pool.end(), candidates.begin(), candidates.end());
  }
  if (pool.empty()) return {};

  // Merge candidates that agree spatially: score-weighted mean offset —
  // for a genuine tie this lands the estimate on the tile boundary.
  std::sort(pool.begin(), pool.end(),
            [](const svd::Candidate& a, const svd::Candidate& b) {
              return a.route_offset < b.route_offset;
            });
  std::vector<svd::Candidate> merged;
  std::size_t i = 0;
  while (i < pool.size()) {
    double weight_sum = pool[i].score;
    double weighted_offset = pool[i].route_offset * pool[i].score;
    double best_score = pool[i].score;
    std::size_t j = i + 1;
    while (j < pool.size() &&
           pool[j].route_offset - pool[j - 1].route_offset <=
               params_.merge_radius_m) {
      weight_sum += pool[j].score;
      weighted_offset += pool[j].route_offset * pool[j].score;
      best_score = std::max(best_score, pool[j].score);
      ++j;
    }
    if (weight_sum > 0.0)
      merged.push_back({weighted_offset / weight_sum, best_score});
    i = j;
  }

  std::sort(merged.begin(), merged.end(),
            [](const svd::Candidate& a, const svd::Candidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.route_offset < b.route_offset;
            });
  if (merged.size() > params_.max_candidates)
    merged.resize(params_.max_candidates);
  return merged;
}

}  // namespace wiloc::core
