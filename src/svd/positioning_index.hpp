// Common interface of the two SVD positioning backends.
//
// Both the paper-faithful planar pipeline (SvdGrid + TileMapper) and the
// route-restricted fast path (RouteSvd) answer the same question: given
// the ranked AP list of one scan, where along the route is the bus? They
// return *candidates* because a rank signature can recur along a long
// corridor; the mobility filter in core disambiguates.
#pragma once

#include <vector>

#include "rf/scan.hpp"
#include "util/obs.hpp"

namespace wiloc::svd {

/// One possible bus position for a scan.
struct Candidate {
  double route_offset;  ///< meters from the route start
  double score;         ///< match quality in [0, 1]; 1 = exact signature
};

/// Obs handles for the locate hot path. All-null by default (locate runs
/// un-instrumented); shared across routes, so counters aggregate
/// server-wide. Updates are wait-free — locate() stays safe to call
/// concurrently.
struct LocateMetrics {
  obs::Counter* fast_path_hits = nullptr;  ///< exact-signature lookups
  obs::Counter* fallback_hits = nullptr;   ///< scored (degraded) matches
  obs::Counter* misses = nullptr;          ///< locate returned nothing
  obs::HistogramMetric* candidates = nullptr;  ///< returned candidate count
  obs::Counter* memo_hits = nullptr;  ///< batch memo replays (RouteSvd)
};

/// A positioning backend bound to one bus route.
class PositioningIndex {
 public:
  virtual ~PositioningIndex() = default;

  /// Candidates for an observed ranking (strongest AP first), sorted by
  /// descending score. Empty when nothing matches at all (e.g. an empty
  /// scan).
  virtual std::vector<Candidate> locate(
      const std::vector<rf::ApId>& observed) const = 0;

  /// Length of the route this index covers.
  virtual double route_length() const = 0;

  /// Whether the AP belongs to this index's AP universe. Backends that
  /// cannot enumerate their universe answer true (nothing is filtered);
  /// RouteSvd/SurveyIndex answer from their construction AP sets, which
  /// lets the ingest guard drop readings from churned-in unknown APs
  /// before they distort the rank signature.
  virtual bool knows_ap(rf::ApId) const { return true; }

  /// Wires obs handles into the locate path. Backends without
  /// instrumentation ignore the call.
  virtual void set_metrics(const LocateMetrics&) {}
};

/// Expands a scan whose top readings contain *ties* (equal quantized RSS)
/// into the distinct rankings consistent with the readings, up to
/// `max_rankings` (the paper treats equal ranks as boundary points —
/// Section III-B; averaging the candidates of the tied rankings lands the
/// estimate on the tile boundary). Ties below `depth` ranks are ignored.
std::vector<std::vector<rf::ApId>> expand_tied_rankings(
    const rf::WifiScan& scan, std::size_t depth = 3,
    std::size_t max_rankings = 6);

}  // namespace wiloc::svd
