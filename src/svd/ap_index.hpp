// Spatial bucketing of APs.
//
// SVD construction evaluates the expected RSS field at millions of grid
// samples; only APs within radio range of a sample can influence its
// ranking, so a uniform bucket grid turns the O(#APs) inner loop into a
// near-constant one.
#pragma once

#include <vector>

#include "geo/geometry.hpp"
#include "rf/access_point.hpp"
#include "rf/propagation.hpp"

namespace wiloc::svd {

/// Uniform-grid index over a fixed AP set (non-owning copies of the AP
/// records are stored by value; the index is immutable after build).
class ApIndex {
 public:
  /// Buckets the APs with the given bucket size (m). Requires > 0.
  ApIndex(std::vector<rf::AccessPoint> aps, double bucket_size_m = 64.0);

  std::size_t count() const { return aps_.size(); }
  const std::vector<rf::AccessPoint>& aps() const { return aps_; }

  /// APs within `radius` of x (by position; candidates may be slightly
  /// farther than radius are filtered exactly).
  void query(geo::Point x, double radius,
             std::vector<const rf::AccessPoint*>& out) const;

  /// The radio range (m) beyond which an AP's *expected* RSS under the
  /// model is below `floor_dbm`: the largest such range over all APs,
  /// padded by the model's shadowing amplitude. Use as the query radius.
  static double hearing_radius(const std::vector<rf::AccessPoint>& aps,
                               const rf::LogDistanceModel& model,
                               double floor_dbm);

 private:
  struct Cell {
    std::vector<std::uint32_t> ap_indices;
  };

  std::size_t cell_of(geo::Point p) const;

  std::vector<rf::AccessPoint> aps_;
  geo::Aabb bounds_;
  double bucket_;
  std::size_t nx_ = 1;
  std::size_t ny_ = 1;
  std::vector<Cell> cells_;
};

}  // namespace wiloc::svd
