#include "svd/route_svd.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "util/contracts.hpp"

namespace wiloc::svd {

namespace {
std::atomic<std::uint64_t> next_build_id{1};
}  // namespace

RouteSvd::RouteSvd(const roadnet::BusRoute& route,
                   std::vector<rf::AccessPoint> aps,
                   const rf::LogDistanceModel& model, RouteSvdParams params)
    : params_(params), length_(route.length()),
      build_id_(next_build_id.fetch_add(1, std::memory_order_relaxed)) {
  WILOC_EXPECTS(params_.order >= 1);
  WILOC_EXPECTS(params_.sample_step_m > 0.0);
  WILOC_EXPECTS(params_.max_candidates >= 1);

  std::uint32_t max_ap = 0;
  for (const auto& ap : aps) max_ap = std::max(max_ap, ap.id.value());
  known_aps_.assign(aps.empty() ? 0 : max_ap + 1, false);
  for (const auto& ap : aps) known_aps_[ap.id.value()] = true;

  const double radius =
      ApIndex::hearing_radius(aps, model, params_.floor_dbm);
  const ApIndex index(std::move(aps));

  std::vector<const rf::AccessPoint*> scratch;
  std::vector<std::pair<double, rf::ApId>> audible;

  const auto signature_of = [&](double offset) {
    const geo::Point x = route.point_at(offset);
    index.query(x, radius, scratch);
    audible.clear();
    for (const rf::AccessPoint* ap : scratch) {
      const double rss = model.mean_rss(*ap, x);
      if (rss >= params_.floor_dbm) audible.emplace_back(rss, ap->id);
    }
    std::sort(audible.begin(), audible.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    std::vector<rf::ApId> ranked;
    ranked.reserve(std::min(params_.order, audible.size()));
    for (std::size_t i = 0; i < audible.size() && i < params_.order; ++i)
      ranked.push_back(audible[i].second);
    return RankSignature(std::move(ranked));
  };

  const auto steps = static_cast<std::size_t>(
      std::ceil(length_ / params_.sample_step_m));
  RankSignature current = signature_of(0.0);
  double run_begin = 0.0;
  for (std::size_t i = 1; i <= steps; ++i) {
    const double offset =
        length_ * static_cast<double>(i) / static_cast<double>(steps);
    RankSignature sig = signature_of(offset);
    if (!(sig == current)) {
      intervals_.push_back({std::move(current), run_begin, offset});
      current = std::move(sig);
      run_begin = offset;
    }
  }
  intervals_.push_back({std::move(current), run_begin, length_});

  for (std::uint32_t i = 0; i < intervals_.size(); ++i)
    by_signature_[intervals_[i].signature].push_back(i);

  // Inverted AP -> interval index for the degraded locate path. Interval
  // ids are appended in ascending order, so each list is sorted.
  postings_.resize(known_aps_.size());
  for (std::uint32_t i = 0; i < intervals_.size(); ++i)
    for (const rf::ApId ap : intervals_[i].signature.aps())
      postings_[ap.index()].push_back(i);
}

const std::vector<std::uint32_t>& RouteSvd::postings_for(rf::ApId ap) const {
  static const std::vector<std::uint32_t> kEmpty;
  if (ap.index() >= postings_.size()) return kEmpty;
  return postings_[ap.index()];
}

const RankSignature& RouteSvd::signature_at(double route_offset) const {
  route_offset = std::clamp(route_offset, 0.0, length_);
  // Intervals are sorted by begin; binary search the containing one.
  const auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), route_offset,
      [](double v, const Interval& iv) { return v < iv.begin; });
  const std::size_t idx =
      it == intervals_.begin()
          ? 0
          : static_cast<std::size_t>(it - intervals_.begin()) - 1;
  return intervals_[idx].signature;
}

double RouteSvd::mean_interval_length() const {
  if (intervals_.empty()) return 0.0;
  return length_ / static_cast<double>(intervals_.size());
}

bool RouteSvd::knows_ap(rf::ApId ap) const {
  return ap.index() < known_aps_.size() && known_aps_[ap.index()];
}

namespace {

// Per-thread scratch for locate(): reused across calls (and across
// RouteSvd instances) to keep the hot path allocation-free. The stamp
// array implements an epoch-marked membership set over interval ids; the
// epoch strictly increases per call, so stale marks never collide.
struct LocateScratch {
  std::vector<rf::ApId> filtered;
  std::vector<std::uint32_t> candidates;
  std::vector<std::uint64_t> stamp;
  std::uint64_t epoch = 0;
  std::vector<std::pair<double, std::uint32_t>> scored;

  // One-entry memo over the previous call. Shard workers drain scans in
  // batches, and consecutive scans of one trip frequently repeat the same
  // filtered ranking; the index is immutable after construction, so the
  // previous result (and its metric outcome) can be replayed verbatim.
  // Keyed by (instance, build id, filtered ranking) — the build id guards
  // against a freed index's address being reused.
  enum class Outcome { kNone, kFast, kFallback, kMiss };
  const void* memo_instance = nullptr;
  std::uint64_t memo_build = 0;
  std::vector<rf::ApId> memo_key;
  std::vector<Candidate> memo_result;
  Outcome memo_outcome = Outcome::kNone;
};

thread_local LocateScratch locate_scratch;

}  // namespace

std::vector<Candidate> RouteSvd::locate(
    const std::vector<rf::ApId>& observed) const {
  LocateScratch& scratch = locate_scratch;

  // Restrict the observation to APs the diagram was built from; unknown
  // (newly appeared) APs cannot be matched and only distort the ranking.
  std::vector<rf::ApId>& filtered = scratch.filtered;
  filtered.clear();
  for (const rf::ApId ap : observed)
    if (knows_ap(ap)) filtered.push_back(ap);
  if (filtered.empty()) {
    if (metrics_.misses != nullptr) metrics_.misses->inc();
    if (metrics_.candidates != nullptr) metrics_.candidates->record(0.0);
    return {};
  }

  // Memo replay: same index, same filtered ranking as the previous call
  // on this thread. The outcome counters are re-incremented so totals stay
  // identical to the unmemoized path; memo_hits records the saving.
  using Outcome = LocateScratch::Outcome;
  if (scratch.memo_instance == this && scratch.memo_build == build_id_ &&
      scratch.memo_key == filtered) {
    if (metrics_.memo_hits != nullptr) metrics_.memo_hits->inc();
    if (scratch.memo_outcome == Outcome::kFast) {
      if (metrics_.fast_path_hits != nullptr) metrics_.fast_path_hits->inc();
    } else if (scratch.memo_outcome == Outcome::kFallback) {
      if (metrics_.fallback_hits != nullptr) metrics_.fallback_hits->inc();
    } else if (metrics_.misses != nullptr) {
      metrics_.misses->inc();
    }
    if (metrics_.candidates != nullptr)
      metrics_.candidates->record(
          static_cast<double>(scratch.memo_result.size()));
    return scratch.memo_result;
  }
  const auto remember = [&](Outcome outcome,
                            const std::vector<Candidate>& result) {
    scratch.memo_instance = this;
    scratch.memo_build = build_id_;
    scratch.memo_key = filtered;
    scratch.memo_result = result;
    scratch.memo_outcome = outcome;
  };

  std::vector<Candidate> out;

  // Fast path: the observed top-k is a signature we have verbatim.
  const RankSignature key = RankSignature::top_k(filtered, params_.order);
  if (const auto it = by_signature_.find(key); it != by_signature_.end()) {
    for (const std::uint32_t idx : it->second)
      out.push_back({intervals_[idx].mid(), 1.0});
    if (out.size() > params_.max_candidates)
      out.resize(params_.max_candidates);
    if (metrics_.fast_path_hits != nullptr) metrics_.fast_path_hits->inc();
    if (metrics_.candidates != nullptr)
      metrics_.candidates->record(static_cast<double>(out.size()));
    remember(Outcome::kFast, out);
    return out;
  }

  // Degraded path (noise flipped a rank, or an AP died): score candidate
  // intervals against the full observed ranking. An interval sharing no
  // AP with the observation scores exactly 0, so when the fallback floor
  // is positive the union of the observed APs' posting lists is a lossless
  // prefilter; a zero floor admits zero-score intervals and needs the
  // full scan.
  std::vector<std::pair<double, std::uint32_t>>& scored = scratch.scored;
  scored.clear();
  if (params_.min_fallback_score > 0.0) {
    std::vector<std::uint32_t>& candidates = scratch.candidates;
    candidates.clear();
    if (scratch.stamp.size() < intervals_.size())
      scratch.stamp.resize(intervals_.size(), 0);
    const std::uint64_t epoch = ++scratch.epoch;
    for (const rf::ApId ap : filtered)
      for (const std::uint32_t idx : postings_[ap.index()])
        if (scratch.stamp[idx] != epoch) {
          scratch.stamp[idx] = epoch;
          candidates.push_back(idx);
        }
    for (const std::uint32_t idx : candidates) {
      const double s = rank_consistency(filtered, intervals_[idx].signature);
      if (s >= params_.min_fallback_score) scored.emplace_back(s, idx);
    }
  } else {
    for (std::uint32_t i = 0; i < intervals_.size(); ++i) {
      const double s = rank_consistency(filtered, intervals_[i].signature);
      if (s >= params_.min_fallback_score) scored.emplace_back(s, i);
    }
  }

  // Only the top max_candidates are returned; a bounded partial sort
  // beats sorting the whole candidate set. The comparator is a total
  // order (ties broken by interval id), so the result is identical to a
  // full sort regardless of the candidate enumeration order.
  const std::size_t take = std::min(params_.max_candidates, scored.size());
  const auto by_score = [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(take),
                    scored.end(), by_score);
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i)
    out.push_back({intervals_[scored[i].second].mid(), scored[i].first});
  if (out.empty()) {
    if (metrics_.misses != nullptr) metrics_.misses->inc();
  } else if (metrics_.fallback_hits != nullptr) {
    metrics_.fallback_hits->inc();
  }
  if (metrics_.candidates != nullptr)
    metrics_.candidates->record(static_cast<double>(out.size()));
  remember(out.empty() ? Outcome::kMiss : Outcome::kFallback, out);
  return out;
}

}  // namespace wiloc::svd
