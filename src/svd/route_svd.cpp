#include "svd/route_svd.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace wiloc::svd {

RouteSvd::RouteSvd(const roadnet::BusRoute& route,
                   std::vector<rf::AccessPoint> aps,
                   const rf::LogDistanceModel& model, RouteSvdParams params)
    : params_(params), length_(route.length()) {
  WILOC_EXPECTS(params_.order >= 1);
  WILOC_EXPECTS(params_.sample_step_m > 0.0);
  WILOC_EXPECTS(params_.max_candidates >= 1);

  std::uint32_t max_ap = 0;
  for (const auto& ap : aps) max_ap = std::max(max_ap, ap.id.value());
  known_aps_.assign(aps.empty() ? 0 : max_ap + 1, false);
  for (const auto& ap : aps) known_aps_[ap.id.value()] = true;

  const double radius =
      ApIndex::hearing_radius(aps, model, params_.floor_dbm);
  const ApIndex index(std::move(aps));

  std::vector<const rf::AccessPoint*> scratch;
  std::vector<std::pair<double, rf::ApId>> audible;

  const auto signature_of = [&](double offset) {
    const geo::Point x = route.point_at(offset);
    index.query(x, radius, scratch);
    audible.clear();
    for (const rf::AccessPoint* ap : scratch) {
      const double rss = model.mean_rss(*ap, x);
      if (rss >= params_.floor_dbm) audible.emplace_back(rss, ap->id);
    }
    std::sort(audible.begin(), audible.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    std::vector<rf::ApId> ranked;
    ranked.reserve(std::min(params_.order, audible.size()));
    for (std::size_t i = 0; i < audible.size() && i < params_.order; ++i)
      ranked.push_back(audible[i].second);
    return RankSignature(std::move(ranked));
  };

  const auto steps = static_cast<std::size_t>(
      std::ceil(length_ / params_.sample_step_m));
  RankSignature current = signature_of(0.0);
  double run_begin = 0.0;
  for (std::size_t i = 1; i <= steps; ++i) {
    const double offset =
        length_ * static_cast<double>(i) / static_cast<double>(steps);
    RankSignature sig = signature_of(offset);
    if (!(sig == current)) {
      intervals_.push_back({std::move(current), run_begin, offset});
      current = std::move(sig);
      run_begin = offset;
    }
  }
  intervals_.push_back({std::move(current), run_begin, length_});

  for (std::uint32_t i = 0; i < intervals_.size(); ++i)
    by_signature_[intervals_[i].signature].push_back(i);
}

const RankSignature& RouteSvd::signature_at(double route_offset) const {
  route_offset = std::clamp(route_offset, 0.0, length_);
  // Intervals are sorted by begin; binary search the containing one.
  const auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), route_offset,
      [](double v, const Interval& iv) { return v < iv.begin; });
  const std::size_t idx =
      it == intervals_.begin()
          ? 0
          : static_cast<std::size_t>(it - intervals_.begin()) - 1;
  return intervals_[idx].signature;
}

double RouteSvd::mean_interval_length() const {
  if (intervals_.empty()) return 0.0;
  return length_ / static_cast<double>(intervals_.size());
}

bool RouteSvd::knows_ap(rf::ApId ap) const {
  return ap.index() < known_aps_.size() && known_aps_[ap.index()];
}

std::vector<Candidate> RouteSvd::locate(
    const std::vector<rf::ApId>& observed) const {
  // Restrict the observation to APs the diagram was built from; unknown
  // (newly appeared) APs cannot be matched and only distort the ranking.
  std::vector<rf::ApId> filtered;
  filtered.reserve(observed.size());
  for (const rf::ApId ap : observed)
    if (knows_ap(ap)) filtered.push_back(ap);
  if (filtered.empty()) return {};

  std::vector<Candidate> out;

  // Fast path: the observed top-k is a signature we have verbatim.
  const RankSignature key = RankSignature::top_k(filtered, params_.order);
  if (const auto it = by_signature_.find(key); it != by_signature_.end()) {
    for (const std::uint32_t idx : it->second)
      out.push_back({intervals_[idx].mid(), 1.0});
    if (out.size() > params_.max_candidates)
      out.resize(params_.max_candidates);
    return out;
  }

  // Degraded path (noise flipped a rank, or an AP died): score every
  // interval's signature against the full observed ranking.
  std::vector<std::pair<double, std::uint32_t>> scored;
  scored.reserve(intervals_.size());
  for (std::uint32_t i = 0; i < intervals_.size(); ++i) {
    const double s = rank_consistency(filtered, intervals_[i].signature);
    if (s >= params_.min_fallback_score) scored.emplace_back(s, i);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  const std::size_t take = std::min(params_.max_candidates, scored.size());
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i)
    out.push_back({intervals_[scored[i].second].mid(), scored[i].first});
  return out;
}

}  // namespace wiloc::svd
