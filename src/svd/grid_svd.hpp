// The Signal Voronoi Diagram (paper Definitions 1 & 2), computed on a
// raster.
//
// Because transmit powers, path-loss exponents and shadowing differ per
// AP, Signal Voronoi Edges are not straight lines and the diagram cannot
// be built with classic computational-geometry Voronoi algorithms (the
// Euclidean VD is the special case of identical APs — paper Section
// III-A). We therefore rasterize the *expected* RSS field: each grid cell
// gets the ordered top-k AP signature of its center, and cells with equal
// signatures aggregate into regions (k-order Signal Tiles).
//
// Region adjacency carries shared-boundary lengths, which the Tile
// Mapping fallback uses ("the neighboring ST with the longest tile
// boundary", Section III-B).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "svd/ap_index.hpp"
#include "svd/signature.hpp"

namespace wiloc::svd {

/// Raster domain and resolution of the diagram.
struct GridSpec {
  geo::Aabb domain;
  double resolution_m = 2.0;
};

/// Construction knobs.
struct SvdGridParams {
  std::size_t order = 2;     ///< signature length: 1 = Signal Cells,
                             ///< 2 = the paper's Signal Tiles, k = k-order
  double floor_dbm = -95.0;  ///< APs with expected RSS below this are
                             ///< not part of a point's ranking
};

/// The rasterized k-order Signal Voronoi Diagram.
class SvdGrid {
 public:
  using RegionIndex = std::uint32_t;

  /// An adjacent region and the length of the shared tile boundary.
  struct NeighborLink {
    RegionIndex region;
    double boundary_length;
  };

  /// A maximal connected-by-signature set of grid cells: a k-order
  /// Signal Tile (or a Signal Cell when order == 1). The region with an
  /// empty signature is radio-dead space.
  struct Region {
    RankSignature signature;
    double area = 0.0;          ///< m^2
    geo::Point centroid{};      ///< mean of member cell centers
    std::vector<NeighborLink> neighbors;  ///< sorted by boundary desc
  };

  /// Builds the diagram. `model` must outlive the grid. Requires a
  /// non-empty domain, positive resolution and order >= 1.
  SvdGrid(std::vector<rf::AccessPoint> aps,
          const rf::LogDistanceModel& model, GridSpec spec,
          SvdGridParams params = {});

  const GridSpec& spec() const { return spec_; }
  std::size_t order() const { return params_.order; }
  std::size_t cols() const { return nx_; }
  std::size_t rows() const { return ny_; }

  std::size_t region_count() const { return regions_.size(); }
  const Region& region(RegionIndex i) const;
  const std::vector<Region>& regions() const { return regions_; }

  /// Region with exactly this signature, if present in the diagram.
  std::optional<RegionIndex> region_of(const RankSignature& sig) const;

  /// Region containing the point. Requires the point inside the domain.
  RegionIndex region_at(geo::Point p) const;

  /// Signature of the region containing the point.
  const RankSignature& signature_at(geo::Point p) const;

  /// Whether the given AP participated in the diagram's construction.
  bool knows_ap(rf::ApId ap) const;

  /// Total area of the Signal Cell SC(ap): all regions whose strongest
  /// AP is `ap`. Zero when the AP dominates nowhere.
  double cell_area(rf::ApId ap) const;

  /// Grid vertices where three or more *Signal Cells* (first-order)
  /// meet: the joint points of Definition 1.
  std::vector<geo::Point> joint_points() const;

  /// Grid vertices where three or more k-order regions meet: the
  /// bisector joints of Definition 2.
  std::vector<geo::Point> bisector_joints() const;

  /// Sum of region areas (== domain area; partition check for tests).
  double total_area() const;

 private:
  std::size_t cell_index(std::size_t cx, std::size_t cy) const {
    return cy * nx_ + cx;
  }
  geo::Point cell_center(std::size_t cx, std::size_t cy) const;
  std::vector<geo::Point> meet_points(bool first_order) const;

  GridSpec spec_;
  SvdGridParams params_;
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::vector<RegionIndex> cell_region_;  // nx*ny, row-major
  std::vector<Region> regions_;
  std::unordered_map<RankSignature, RegionIndex, RankSignatureHash>
      by_signature_;
  std::vector<bool> known_aps_;  // indexed by ApId
};

}  // namespace wiloc::svd
