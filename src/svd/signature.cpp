#include "svd/signature.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace wiloc::svd {

RankSignature::RankSignature(std::vector<rf::ApId> ranked)
    : aps_(std::move(ranked)) {
  for (std::size_t i = 0; i < aps_.size(); ++i)
    for (std::size_t j = i + 1; j < aps_.size(); ++j)
      WILOC_EXPECTS(aps_[i] != aps_[j]);
}

RankSignature RankSignature::top_k(const std::vector<rf::ApId>& ranked,
                                   std::size_t k) {
  std::vector<rf::ApId> head(
      ranked.begin(),
      ranked.begin() +
          static_cast<std::ptrdiff_t>(std::min(k, ranked.size())));
  return RankSignature(std::move(head));
}

rf::ApId RankSignature::strongest() const {
  WILOC_EXPECTS(!aps_.empty());
  return aps_.front();
}

rf::ApId RankSignature::at(std::size_t i) const {
  WILOC_EXPECTS(i < aps_.size());
  return aps_[i];
}

RankSignature RankSignature::prefix(std::size_t k) const {
  return top_k(aps_, k);
}

bool RankSignature::has_prefix(const RankSignature& other) const {
  if (other.aps_.size() > aps_.size()) return false;
  return std::equal(other.aps_.begin(), other.aps_.end(), aps_.begin());
}

std::string RankSignature::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < aps_.size(); ++i) {
    if (i > 0) out += '>';
    out += std::to_string(aps_[i].value());
  }
  return out.empty() ? "()" : out;
}

std::size_t RankSignature::hash() const {
  std::size_t h = 0xcbf29ce484222325ULL;
  for (const rf::ApId ap : aps_) {
    h ^= ap.value();
    h *= 0x100000001b3ULL;
  }
  return h;
}

double rank_consistency(const std::vector<rf::ApId>& observed,
                        const RankSignature& signature) {
  if (signature.empty() || observed.empty()) return 0.0;

  // Position of each signature AP in the observed ranking (-1 = unheard).
  // Signatures are short (order k); a stack buffer keeps the scorer
  // allocation-free on the locate hot path, with a heap fallback for
  // unusually long signatures.
  constexpr std::size_t kStackOrder = 16;
  std::ptrdiff_t stack_pos[kStackOrder];
  std::vector<std::ptrdiff_t> heap_pos;
  std::ptrdiff_t* obs_pos = stack_pos;
  const std::size_t order = signature.order();
  if (order > kStackOrder) {
    heap_pos.resize(order);
    obs_pos = heap_pos.data();
  }
  for (std::size_t i = 0; i < order; ++i) {
    const auto it =
        std::find(observed.begin(), observed.end(), signature.at(i));
    obs_pos[i] = it != observed.end() ? it - observed.begin() : -1;
  }

  std::size_t heard = 0;
  for (std::size_t i = 0; i < order; ++i)
    if (obs_pos[i] >= 0) ++heard;
  if (heard == 0) return 0.0;

  const double coverage =
      static_cast<double>(heard) / static_cast<double>(order);

  // Pairwise order agreement over the heard APs.
  std::size_t pairs = 0;
  std::size_t concordant = 0;
  for (std::size_t i = 0; i < order; ++i) {
    if (obs_pos[i] < 0) continue;
    for (std::size_t j = i + 1; j < order; ++j) {
      if (obs_pos[j] < 0) continue;
      ++pairs;
      if (obs_pos[i] < obs_pos[j]) ++concordant;
    }
  }
  const double agreement =
      pairs == 0 ? 1.0
                 : static_cast<double>(concordant) /
                       static_cast<double>(pairs);

  const double top_match =
      (signature.strongest() == observed.front()) ? 1.0 : 0.0;

  // Weights chosen so that exact matches score 1.0 and a completely
  // reversed or unheard signature scores near 0.
  return 0.45 * coverage + 0.40 * coverage * agreement + 0.15 * top_match;
}

}  // namespace wiloc::svd
