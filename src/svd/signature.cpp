#include "svd/signature.hpp"

#include <algorithm>
#include <cstdint>

#if defined(__AVX2__) || defined(__SSE2__)
#include <immintrin.h>
#endif

#include "util/contracts.hpp"

namespace wiloc::svd {

RankSignature::RankSignature(std::vector<rf::ApId> ranked)
    : aps_(std::move(ranked)) {
  for (std::size_t i = 0; i < aps_.size(); ++i)
    for (std::size_t j = i + 1; j < aps_.size(); ++j)
      WILOC_EXPECTS(aps_[i] != aps_[j]);
}

RankSignature RankSignature::top_k(const std::vector<rf::ApId>& ranked,
                                   std::size_t k) {
  std::vector<rf::ApId> head(
      ranked.begin(),
      ranked.begin() +
          static_cast<std::ptrdiff_t>(std::min(k, ranked.size())));
  return RankSignature(std::move(head));
}

rf::ApId RankSignature::strongest() const {
  WILOC_EXPECTS(!aps_.empty());
  return aps_.front();
}

rf::ApId RankSignature::at(std::size_t i) const {
  WILOC_EXPECTS(i < aps_.size());
  return aps_[i];
}

RankSignature RankSignature::prefix(std::size_t k) const {
  return top_k(aps_, k);
}

bool RankSignature::has_prefix(const RankSignature& other) const {
  if (other.aps_.size() > aps_.size()) return false;
  return std::equal(other.aps_.begin(), other.aps_.end(), aps_.begin());
}

std::string RankSignature::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < aps_.size(); ++i) {
    if (i > 0) out += '>';
    out += std::to_string(aps_[i].value());
  }
  return out.empty() ? "()" : out;
}

std::size_t RankSignature::hash() const {
  std::size_t h = 0xcbf29ce484222325ULL;
  for (const rf::ApId ap : aps_) {
    h ^= ap.value();
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

// Scoring stage shared by the scalar and SIMD entry points. Both hand it
// the same integer positions, so the floating-point result is bit-identical
// regardless of which kernel found them.
double score_positions(const std::ptrdiff_t* obs_pos, std::size_t order,
                       bool top_match) {
  std::size_t heard = 0;
  for (std::size_t i = 0; i < order; ++i)
    if (obs_pos[i] >= 0) ++heard;
  if (heard == 0) return 0.0;

  const double coverage =
      static_cast<double>(heard) / static_cast<double>(order);

  // Pairwise order agreement over the heard APs.
  std::size_t pairs = 0;
  std::size_t concordant = 0;
  for (std::size_t i = 0; i < order; ++i) {
    if (obs_pos[i] < 0) continue;
    for (std::size_t j = i + 1; j < order; ++j) {
      if (obs_pos[j] < 0) continue;
      ++pairs;
      if (obs_pos[i] < obs_pos[j]) ++concordant;
    }
  }
  const double agreement =
      pairs == 0 ? 1.0
                 : static_cast<double>(concordant) /
                       static_cast<double>(pairs);

  // Weights chosen so that exact matches score 1.0 and a completely
  // reversed or unheard signature scores near 0.
  return 0.45 * coverage + 0.40 * coverage * agreement +
         0.15 * (top_match ? 1.0 : 0.0);
}

// First index of `needle` in data[0..n), or -1. The SIMD paths compare
// 8 (AVX2) or 4 (SSE2) lanes per step and resolve the earliest match via
// movemask + ctz; ties within a vector cannot reorder because the mask's
// lowest set bit is the lowest index. ApId is a one-word wrapper whose
// object representation is exactly its u32 value, and GCC/Clang define
// __m128i/__m256i with the may_alias attribute, so the vector loads read
// the ApId array in place — no unwrap copy on the hot path.
std::ptrdiff_t find_first_ap(const rf::ApId* data, std::size_t n,
                             rf::ApId needle) {
  static_assert(sizeof(rf::ApId) == sizeof(std::uint32_t));
  std::size_t i = 0;
#if defined(__AVX2__)
  const __m256i key =
      _mm256_set1_epi32(static_cast<int>(needle.value()));
  for (; i + 8 <= n; i += 8) {
    const __m256i chunk = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(data + i));
    const int mask = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(chunk, key)));
    if (mask != 0)
      return static_cast<std::ptrdiff_t>(
          i + static_cast<std::size_t>(__builtin_ctz(
                  static_cast<unsigned>(mask))));
  }
#elif defined(__SSE2__)
  const __m128i key = _mm_set1_epi32(static_cast<int>(needle.value()));
  for (; i + 4 <= n; i += 4) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const int mask = _mm_movemask_ps(
        _mm_castsi128_ps(_mm_cmpeq_epi32(chunk, key)));
    if (mask != 0)
      return static_cast<std::ptrdiff_t>(
          i + static_cast<std::size_t>(__builtin_ctz(
                  static_cast<unsigned>(mask))));
  }
#endif
  for (; i < n; ++i)
    if (data[i] == needle) return static_cast<std::ptrdiff_t>(i);
  return -1;
}

// Signatures are short (order k); a stack position buffer keeps the
// scorer allocation-free on the locate hot path, with a heap fallback
// for unusually long signatures.
constexpr std::size_t kStackOrder = 16;

}  // namespace

const char* rank_consistency_kernel() {
#if defined(__AVX2__)
  return "avx2";
#elif defined(__SSE2__)
  return "sse2";
#else
  return "scalar";
#endif
}

double rank_consistency_scalar(const std::vector<rf::ApId>& observed,
                               const RankSignature& signature) {
  if (signature.empty() || observed.empty()) return 0.0;

  std::ptrdiff_t stack_pos[kStackOrder];
  std::vector<std::ptrdiff_t> heap_pos;
  std::ptrdiff_t* obs_pos = stack_pos;
  const std::size_t order = signature.order();
  if (order > kStackOrder) {
    heap_pos.resize(order);
    obs_pos = heap_pos.data();
  }
  for (std::size_t i = 0; i < order; ++i) {
    const auto it =
        std::find(observed.begin(), observed.end(), signature.at(i));
    obs_pos[i] = it != observed.end() ? it - observed.begin() : -1;
  }
  return score_positions(obs_pos, order,
                         signature.strongest() == observed.front());
}

double rank_consistency(const std::vector<rf::ApId>& observed,
                        const RankSignature& signature) {
  if (signature.empty() || observed.empty()) return 0.0;

  const std::size_t n = observed.size();
  // Length-adaptive dispatch: below two SSE2 vectors of lanes the
  // unrolled scalar std::find wins (sparse-area scans hear ~5 APs), so
  // short rankings take the reference path — which finds the same
  // integer positions, keeping the result bit-identical either way.
  constexpr std::size_t kSimdMinObserved = 8;
  if (n < kSimdMinObserved)
    return rank_consistency_scalar(observed, signature);

  const std::size_t order = signature.order();
  std::ptrdiff_t stack_pos[kStackOrder];
  std::vector<std::ptrdiff_t> heap_pos;
  std::ptrdiff_t* obs_pos = stack_pos;
  if (order > kStackOrder) {
    heap_pos.resize(order);
    obs_pos = heap_pos.data();
  }

  for (std::size_t i = 0; i < order; ++i)
    obs_pos[i] = find_first_ap(observed.data(), n, signature.at(i));

  return score_positions(obs_pos, order,
                         signature.strongest() == observed.front());
}

}  // namespace wiloc::svd
