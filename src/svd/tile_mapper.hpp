// Tile Mapping — paper Definition 5 plus the fallback rules of
// Section III-B, over the planar SvdGrid.
//
// For every grid region (Signal Tile) that intersects the route, the
// mapper precomputes the road sub-segments inside it. Locating a scan:
//   1. find the tile whose signature matches the observed ranking
//      (exact hash hit, else best consistency score);
//   2. if the tile intersects the road, the estimate is the nearest
//      point of the tile centroid on its sub-segment(s) — F(ST) = p_ij;
//   3. if not (noise pushed the estimate off-road), hop to the
//      neighbouring tile with the longest shared tile boundary until a
//      road-intersecting tile is found, and project through it.
#pragma once

#include "roadnet/route.hpp"
#include "svd/grid_svd.hpp"
#include "svd/positioning_index.hpp"

namespace wiloc::svd {

struct TileMapperParams {
  double sample_step_m = 1.0;        ///< route sampling resolution
  std::size_t max_fallback_hops = 8; ///< bound on the neighbour walk
  std::size_t max_candidates = 8;
  double min_fallback_score = 0.15;
};

/// Binds a planar SvdGrid to one bus route. Non-owning: both the grid
/// and the route must outlive the mapper.
class TileMapper final : public PositioningIndex {
 public:
  TileMapper(const SvdGrid& grid, const roadnet::BusRoute& route,
             TileMapperParams params = {});

  /// A contiguous run of route offsets inside one region.
  struct Run {
    double begin;
    double end;
  };

  /// Road sub-segments inside the region (empty when the tile does not
  /// intersect the route).
  const std::vector<Run>& runs_of(SvdGrid::RegionIndex region) const;

  /// The region a scan from this tile would be *mapped through*: itself
  /// when it intersects the road, else the road-intersecting region
  /// reached by the longest-boundary neighbour walk. nullopt when the
  /// walk found nothing within the hop budget.
  std::optional<SvdGrid::RegionIndex> mapping_target(
      SvdGrid::RegionIndex region) const;

  /// Number of regions that intersect the route.
  std::size_t mapped_region_count() const;

  std::vector<Candidate> locate(
      const std::vector<rf::ApId>& observed) const override;

  double route_length() const override { return route_->length(); }

  const SvdGrid& grid() const { return *grid_; }

 private:
  /// Definition 5: nearest point of `centroid` on the target's runs,
  /// as a route offset.
  double project_centroid(geo::Point centroid,
                          SvdGrid::RegionIndex target) const;

  void append_candidates(SvdGrid::RegionIndex region, double score,
                         std::vector<Candidate>& out) const;

  const SvdGrid* grid_;
  const roadnet::BusRoute* route_;
  TileMapperParams params_;
  std::vector<std::vector<Run>> runs_;          // per region
  std::vector<std::optional<SvdGrid::RegionIndex>> target_;  // per region
  std::vector<Run> empty_;
};

}  // namespace wiloc::svd
