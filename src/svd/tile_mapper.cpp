#include "svd/tile_mapper.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/contracts.hpp"

namespace wiloc::svd {

TileMapper::TileMapper(const SvdGrid& grid, const roadnet::BusRoute& route,
                       TileMapperParams params)
    : grid_(&grid), route_(&route), params_(params) {
  WILOC_EXPECTS(params_.sample_step_m > 0.0);
  WILOC_EXPECTS(params_.max_candidates >= 1);

  runs_.resize(grid.region_count());
  target_.resize(grid.region_count());

  // Attribute fine route samples to regions and coalesce runs.
  const double length = route.length();
  const auto steps = static_cast<std::size_t>(
      std::ceil(length / params_.sample_step_m));
  std::optional<SvdGrid::RegionIndex> current;
  double run_begin = 0.0;
  const auto region_of_offset =
      [&](double offset) -> std::optional<SvdGrid::RegionIndex> {
    const geo::Point p = route.point_at(offset);
    if (!grid.spec().domain.contains(p)) return std::nullopt;
    return grid.region_at(p);
  };
  const auto close_run = [&](double end_offset) {
    if (current.has_value() && end_offset > run_begin)
      runs_[*current].push_back({run_begin, end_offset});
  };
  for (std::size_t i = 0; i <= steps; ++i) {
    const double offset =
        length * static_cast<double>(i) / static_cast<double>(steps);
    const auto region = region_of_offset(offset);
    if (region != current) {
      // Runs abut at the transition sample so they tile the route.
      close_run(offset);
      current = region;
      run_begin = offset;
    }
  }
  close_run(length);

  // Fallback targets: a region maps to itself when it has runs; otherwise
  // walk neighbours in longest-boundary-first order (BFS whose frontier
  // is expanded best-first) until a run-bearing region appears.
  for (SvdGrid::RegionIndex r = 0;
       r < static_cast<SvdGrid::RegionIndex>(grid.region_count()); ++r) {
    if (!runs_[r].empty()) {
      target_[r] = r;
      continue;
    }
    // Priority queue over (accumulated boundary, region); larger
    // boundaries explored first, hop-limited.
    struct Item {
      double boundary;
      std::size_t hops;
      SvdGrid::RegionIndex region;
    };
    const auto cmp = [](const Item& a, const Item& b) {
      return a.boundary < b.boundary;
    };
    std::priority_queue<Item, std::vector<Item>, decltype(cmp)> frontier(cmp);
    std::vector<bool> visited(grid.region_count(), false);
    visited[r] = true;
    for (const auto& link : grid.region(r).neighbors)
      frontier.push({link.boundary_length, 1, link.region});
    while (!frontier.empty()) {
      const Item item = frontier.top();
      frontier.pop();
      if (visited[item.region]) continue;
      visited[item.region] = true;
      if (!runs_[item.region].empty()) {
        target_[r] = item.region;
        break;
      }
      if (item.hops >= params_.max_fallback_hops) continue;
      for (const auto& link : grid.region(item.region).neighbors) {
        if (!visited[link.region])
          frontier.push({link.boundary_length, item.hops + 1, link.region});
      }
    }
  }
}

const std::vector<TileMapper::Run>& TileMapper::runs_of(
    SvdGrid::RegionIndex region) const {
  WILOC_EXPECTS(region < runs_.size());
  return runs_[region];
}

std::optional<SvdGrid::RegionIndex> TileMapper::mapping_target(
    SvdGrid::RegionIndex region) const {
  WILOC_EXPECTS(region < target_.size());
  return target_[region];
}

std::size_t TileMapper::mapped_region_count() const {
  std::size_t n = 0;
  for (const auto& runs : runs_)
    if (!runs.empty()) ++n;
  return n;
}

double TileMapper::project_centroid(geo::Point centroid,
                                    SvdGrid::RegionIndex target) const {
  // Route offset of the centroid's projection, clamped into the target's
  // nearest run.
  const auto proj = route_->project(centroid);
  const std::vector<Run>& runs = runs_[target];
  WILOC_EXPECTS(!runs.empty());
  double best_offset = runs.front().begin;
  double best_gap = std::numeric_limits<double>::infinity();
  for (const Run& run : runs) {
    const double clamped = std::clamp(proj.route_offset, run.begin, run.end);
    const double gap = std::abs(clamped - proj.route_offset);
    if (gap < best_gap) {
      best_gap = gap;
      best_offset = clamped;
    }
  }
  return best_offset;
}

void TileMapper::append_candidates(SvdGrid::RegionIndex region, double score,
                                   std::vector<Candidate>& out) const {
  const auto target = target_[region];
  if (!target.has_value()) return;
  const std::vector<Run>& runs = runs_[*target];
  if (runs.size() == 1) {
    // Definition 5: nearest point of the tile centroid on e_ij.
    out.push_back(
        {project_centroid(grid_->region(region).centroid, *target), score});
    return;
  }
  // A rank signature can govern several disconnected stretches of a long
  // corridor; the centroid then lies between them and projecting it is
  // meaningless. Emit one candidate per stretch and let the mobility
  // constraint disambiguate.
  for (const Run& run : runs) {
    if (out.size() >= params_.max_candidates) break;
    out.push_back({(run.begin + run.end) / 2.0, score});
  }
}

std::vector<Candidate> TileMapper::locate(
    const std::vector<rf::ApId>& observed) const {
  std::vector<rf::ApId> filtered;
  filtered.reserve(observed.size());
  for (const rf::ApId ap : observed)
    if (grid_->knows_ap(ap)) filtered.push_back(ap);
  if (filtered.empty()) return {};

  std::vector<Candidate> out;

  const RankSignature key =
      RankSignature::top_k(filtered, grid_->order());
  if (const auto region = grid_->region_of(key); region.has_value()) {
    append_candidates(*region, 1.0, out);
    if (!out.empty()) return out;
    // An exact region with no reachable road: fall through to scoring.
  }

  std::vector<std::pair<double, SvdGrid::RegionIndex>> scored;
  for (SvdGrid::RegionIndex r = 0;
       r < static_cast<SvdGrid::RegionIndex>(grid_->region_count()); ++r) {
    if (!target_[r].has_value()) continue;  // unmappable dead space
    const double s = rank_consistency(filtered, grid_->region(r).signature);
    if (s >= params_.min_fallback_score) scored.emplace_back(s, r);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (std::size_t i = 0;
       i < scored.size() && out.size() < params_.max_candidates; ++i) {
    append_candidates(scored[i].second, scored[i].first, out);
  }
  return out;
}

}  // namespace wiloc::svd
