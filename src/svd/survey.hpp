// Crowd-sourced SVD construction.
//
// The deployed system cannot query a propagation model's mean field —
// it observes the world only through rider scans. The paper's insight is
// that "the average RSS rank from an AP sensed by multiple devices
// remains relatively stable": accumulating many position-labelled scans
// per stretch of road and ranking the *average* RSS recovers the same
// tile structure the model-based builder computes analytically.
//
// SurveyBuilder bins scans by route offset (labels come from tracking,
// GPS seeding, or schedule interpolation), averages RSS per (bin, AP),
// and emits a RouteSvd-compatible interval structure. Tests verify the
// crowd-built diagram converges to the model-built one.
#pragma once

#include <memory>
#include <unordered_map>

#include "roadnet/route.hpp"
#include "svd/positioning_index.hpp"
#include "svd/signature.hpp"

namespace wiloc::svd {

struct SurveyParams {
  double bin_m = 10.0;              ///< route-offset bin width
  std::size_t order = 2;            ///< signature order of the diagram
  std::size_t min_samples = 2;      ///< bins with fewer scans are skipped
  std::size_t min_ap_samples = 2;   ///< AP readings needed per bin
  std::size_t max_candidates = 8;
  double min_fallback_score = 0.15;
};

/// Accumulates position-labelled scans and builds a survey-based
/// positioning index.
class SurveyBuilder {
 public:
  /// `route` must outlive the builder and the built index.
  SurveyBuilder(const roadnet::BusRoute& route, SurveyParams params = {});

  /// Adds one scan labelled with the route offset where it was taken
  /// (clamped into [0, route length]).
  void add_scan(double route_offset, const rf::WifiScan& scan);

  std::size_t scan_count() const { return scans_; }

  /// Bins with enough samples to contribute a signature.
  std::size_t covered_bins() const;
  std::size_t total_bins() const { return bins_.size(); }

  /// Average-rank signature of a bin (empty when under-sampled).
  RankSignature bin_signature(std::size_t bin) const;

  /// Builds the index from the accumulated scans. Under-sampled bins
  /// inherit the previous covered bin's signature (a bus sweeps the
  /// route continuously, so gaps are short). Requires at least one
  /// covered bin.
  std::unique_ptr<PositioningIndex> build() const;

 private:
  struct BinStats {
    // Per-AP accumulated RSS over the scans that heard it.
    std::unordered_map<rf::ApId, std::pair<double, std::size_t>> rss;
    std::size_t samples = 0;
  };

  const roadnet::BusRoute* route_;
  SurveyParams params_;
  std::vector<BinStats> bins_;
  std::size_t scans_ = 0;
};

/// The index built by SurveyBuilder: same interval/locate semantics as
/// RouteSvd, but sourced from crowd data.
class SurveyIndex final : public PositioningIndex {
 public:
  struct Interval {
    RankSignature signature;
    double begin;
    double end;
    double mid() const { return (begin + end) / 2.0; }
  };

  SurveyIndex(double route_length, std::vector<Interval> intervals,
              SurveyParams params);

  const std::vector<Interval>& intervals() const { return intervals_; }

  std::vector<Candidate> locate(
      const std::vector<rf::ApId>& observed) const override;
  double route_length() const override { return length_; }

  /// True when the AP appears in any interval's signature.
  bool knows_ap(rf::ApId ap) const override;

 private:
  double length_;
  SurveyParams params_;
  std::vector<Interval> intervals_;
  std::unordered_map<RankSignature, std::vector<std::uint32_t>,
                     RankSignatureHash>
      by_signature_;
  std::vector<bool> known_aps_;  // indexed by AP id
};

}  // namespace wiloc::svd
