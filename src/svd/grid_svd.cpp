#include "svd/grid_svd.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/contracts.hpp"

namespace wiloc::svd {

namespace {

/// Ranks the APs audible at x by expected RSS (desc), ties by id (asc).
RankSignature signature_at_point(const ApIndex& index,
                                 const rf::LogDistanceModel& model,
                                 geo::Point x, double radius,
                                 double floor_dbm, std::size_t order,
                                 std::vector<const rf::AccessPoint*>& scratch,
                                 std::vector<std::pair<double, rf::ApId>>&
                                     audible) {
  index.query(x, radius, scratch);
  audible.clear();
  for (const rf::AccessPoint* ap : scratch) {
    const double rss = model.mean_rss(*ap, x);
    if (rss >= floor_dbm) audible.emplace_back(rss, ap->id);
  }
  std::sort(audible.begin(), audible.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<rf::ApId> ranked;
  ranked.reserve(std::min(order, audible.size()));
  for (std::size_t i = 0; i < audible.size() && i < order; ++i)
    ranked.push_back(audible[i].second);
  return RankSignature(std::move(ranked));
}

}  // namespace

SvdGrid::SvdGrid(std::vector<rf::AccessPoint> aps,
                 const rf::LogDistanceModel& model, GridSpec spec,
                 SvdGridParams params)
    : spec_(spec), params_(params) {
  WILOC_EXPECTS(!spec_.domain.empty());
  WILOC_EXPECTS(spec_.resolution_m > 0.0);
  WILOC_EXPECTS(params_.order >= 1);

  std::uint32_t max_ap = 0;
  for (const auto& ap : aps) max_ap = std::max(max_ap, ap.id.value());
  known_aps_.assign(aps.empty() ? 0 : max_ap + 1, false);
  for (const auto& ap : aps) known_aps_[ap.id.value()] = true;

  const double radius = ApIndex::hearing_radius(aps, model, params_.floor_dbm);
  const ApIndex index(std::move(aps));

  nx_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(spec_.domain.width() / spec_.resolution_m)));
  ny_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(spec_.domain.height() / spec_.resolution_m)));
  cell_region_.assign(nx_ * ny_, 0);

  std::vector<const rf::AccessPoint*> scratch;
  std::vector<std::pair<double, rf::ApId>> audible;
  std::vector<double> sum_x;
  std::vector<double> sum_y;
  std::vector<std::size_t> counts;

  for (std::size_t cy = 0; cy < ny_; ++cy) {
    for (std::size_t cx = 0; cx < nx_; ++cx) {
      const geo::Point center = cell_center(cx, cy);
      RankSignature sig =
          signature_at_point(index, model, center, radius, params_.floor_dbm,
                             params_.order, scratch, audible);
      RegionIndex ridx;
      const auto it = by_signature_.find(sig);
      if (it == by_signature_.end()) {
        ridx = static_cast<RegionIndex>(regions_.size());
        by_signature_.emplace(sig, ridx);
        regions_.push_back(Region{std::move(sig), 0.0, {}, {}});
        sum_x.push_back(0.0);
        sum_y.push_back(0.0);
        counts.push_back(0);
      } else {
        ridx = it->second;
      }
      cell_region_[cell_index(cx, cy)] = ridx;
      sum_x[ridx] += center.x;
      sum_y[ridx] += center.y;
      ++counts[ridx];
    }
  }

  const double cell_area =
      spec_.resolution_m * spec_.resolution_m;
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    regions_[r].area = cell_area * static_cast<double>(counts[r]);
    regions_[r].centroid = {sum_x[r] / static_cast<double>(counts[r]),
                            sum_y[r] / static_cast<double>(counts[r])};
  }

  // Accumulate shared boundary lengths over 4-neighbour cell pairs.
  std::map<std::pair<RegionIndex, RegionIndex>, double> boundary;
  const auto touch = [&](RegionIndex a, RegionIndex b) {
    if (a == b) return;
    const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    boundary[key] += spec_.resolution_m;
  };
  for (std::size_t cy = 0; cy < ny_; ++cy) {
    for (std::size_t cx = 0; cx < nx_; ++cx) {
      const RegionIndex here = cell_region_[cell_index(cx, cy)];
      if (cx + 1 < nx_) touch(here, cell_region_[cell_index(cx + 1, cy)]);
      if (cy + 1 < ny_) touch(here, cell_region_[cell_index(cx, cy + 1)]);
    }
  }
  for (const auto& [key, len] : boundary) {
    regions_[key.first].neighbors.push_back({key.second, len});
    regions_[key.second].neighbors.push_back({key.first, len});
  }
  for (Region& region : regions_) {
    std::sort(region.neighbors.begin(), region.neighbors.end(),
              [](const NeighborLink& a, const NeighborLink& b) {
                if (a.boundary_length != b.boundary_length)
                  return a.boundary_length > b.boundary_length;
                return a.region < b.region;
              });
  }
}

geo::Point SvdGrid::cell_center(std::size_t cx, std::size_t cy) const {
  return {spec_.domain.min().x +
              (static_cast<double>(cx) + 0.5) * spec_.resolution_m,
          spec_.domain.min().y +
              (static_cast<double>(cy) + 0.5) * spec_.resolution_m};
}

const SvdGrid::Region& SvdGrid::region(RegionIndex i) const {
  WILOC_EXPECTS(i < regions_.size());
  return regions_[i];
}

std::optional<SvdGrid::RegionIndex> SvdGrid::region_of(
    const RankSignature& sig) const {
  const auto it = by_signature_.find(sig);
  if (it == by_signature_.end()) return std::nullopt;
  return it->second;
}

SvdGrid::RegionIndex SvdGrid::region_at(geo::Point p) const {
  WILOC_EXPECTS(spec_.domain.contains(p));
  const auto clamp_idx = [](double v, std::size_t n) {
    if (v < 0.0) return std::size_t{0};
    const auto i = static_cast<std::size_t>(v);
    return std::min(i, n - 1);
  };
  const std::size_t cx =
      clamp_idx((p.x - spec_.domain.min().x) / spec_.resolution_m, nx_);
  const std::size_t cy =
      clamp_idx((p.y - spec_.domain.min().y) / spec_.resolution_m, ny_);
  return cell_region_[cell_index(cx, cy)];
}

const RankSignature& SvdGrid::signature_at(geo::Point p) const {
  return regions_[region_at(p)].signature;
}

bool SvdGrid::knows_ap(rf::ApId ap) const {
  return ap.index() < known_aps_.size() && known_aps_[ap.index()];
}

double SvdGrid::cell_area(rf::ApId ap) const {
  double area = 0.0;
  for (const Region& region : regions_) {
    if (!region.signature.empty() && region.signature.strongest() == ap)
      area += region.area;
  }
  return area;
}

std::vector<geo::Point> SvdGrid::meet_points(bool first_order) const {
  std::vector<geo::Point> out;
  for (std::size_t cy = 0; cy + 1 < ny_; ++cy) {
    for (std::size_t cx = 0; cx + 1 < nx_; ++cx) {
      const RegionIndex quad[4] = {
          cell_region_[cell_index(cx, cy)],
          cell_region_[cell_index(cx + 1, cy)],
          cell_region_[cell_index(cx, cy + 1)],
          cell_region_[cell_index(cx + 1, cy + 1)]};
      // Count distinct keys among the four cells around this vertex.
      std::vector<std::uint64_t> keys;
      keys.reserve(4);
      for (const RegionIndex r : quad) {
        std::uint64_t key;
        if (first_order) {
          const RankSignature& sig = regions_[r].signature;
          key = sig.empty() ? ~std::uint64_t{0}
                            : std::uint64_t{sig.strongest().value()};
        } else {
          key = r;
        }
        if (std::find(keys.begin(), keys.end(), key) == keys.end())
          keys.push_back(key);
      }
      if (keys.size() >= 3) {
        out.push_back({spec_.domain.min().x +
                           static_cast<double>(cx + 1) * spec_.resolution_m,
                       spec_.domain.min().y +
                           static_cast<double>(cy + 1) * spec_.resolution_m});
      }
    }
  }
  return out;
}

std::vector<geo::Point> SvdGrid::joint_points() const {
  return meet_points(/*first_order=*/true);
}

std::vector<geo::Point> SvdGrid::bisector_joints() const {
  return meet_points(/*first_order=*/false);
}

double SvdGrid::total_area() const {
  double area = 0.0;
  for (const Region& region : regions_) area += region.area;
  return area;
}

}  // namespace wiloc::svd
