// Rank signatures — the currency of the Signal Voronoi Diagram.
//
// A k-order Signal Tile is identified by the ordered list of its k
// strongest APs (Proposition 1: the RSS values are ordered within each
// tile). Raw RSS swings by >10 dB at a fixed point, but this *ranking* is
// stable, which is the paper's whole premise.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "rf/access_point.hpp"

namespace wiloc::svd {

/// An ordered AP ranking (strongest first, no duplicates). Order-1
/// signatures identify Signal Cells, order-2 the paper's Signal Tiles
/// ST(p_i, p_nj), order-k the k-order tiles.
class RankSignature {
 public:
  RankSignature() = default;

  /// Requires no duplicate APs.
  explicit RankSignature(std::vector<rf::ApId> ranked);

  /// The first k entries of a longer ranking (k clamped to its size).
  static RankSignature top_k(const std::vector<rf::ApId>& ranked,
                             std::size_t k);

  std::size_t order() const { return aps_.size(); }
  bool empty() const { return aps_.empty(); }

  /// Strongest AP (the Signal Cell's site). Requires non-empty.
  rf::ApId strongest() const;

  /// AP at rank position i (0 = strongest). Requires i < order().
  rf::ApId at(std::size_t i) const;

  const std::vector<rf::ApId>& aps() const { return aps_; }

  /// First k entries as a new signature (k clamped to order()).
  RankSignature prefix(std::size_t k) const;

  /// True when `other` is a prefix of *this.
  bool has_prefix(const RankSignature& other) const;

  /// "3>7>1"-style rendering.
  std::string to_string() const;

  friend bool operator==(const RankSignature& a, const RankSignature& b) {
    return a.aps_ == b.aps_;
  }
  friend bool operator<(const RankSignature& a, const RankSignature& b) {
    return a.aps_ < b.aps_;
  }

  /// FNV-style hash for unordered containers.
  std::size_t hash() const;

 private:
  std::vector<rf::ApId> aps_;
};

struct RankSignatureHash {
  std::size_t operator()(const RankSignature& s) const { return s.hash(); }
};

/// Agreement between an observed full ranking and a stored signature, in
/// [0, 1]. Combines coverage (how many of the signature's APs were heard)
/// with pairwise order agreement (Kendall-style) over the common APs, and
/// rewards matching the strongest AP. Returns 0 when nothing matches.
///
/// Dispatches to a vectorized position-lookup kernel (AVX2/SSE2, chosen
/// at compile time) and is bit-identical to rank_consistency_scalar():
/// SIMD only changes how the integer AP positions are found, never the
/// floating-point scoring that consumes them.
double rank_consistency(const std::vector<rf::ApId>& observed,
                        const RankSignature& signature);

/// Portable reference implementation (std::find inner loop). The parity
/// suite asserts rank_consistency() == rank_consistency_scalar() bit for
/// bit on randomized rankings.
double rank_consistency_scalar(const std::vector<rf::ApId>& observed,
                               const RankSignature& signature);

/// Name of the compiled-in position-lookup kernel: "avx2", "sse2", or
/// "scalar". Benches record it next to ns/op numbers.
const char* rank_consistency_kernel();

}  // namespace wiloc::svd
