#include "svd/positioning_index.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace wiloc::svd {

std::vector<std::vector<rf::ApId>> expand_tied_rankings(
    const rf::WifiScan& scan, std::size_t depth, std::size_t max_rankings) {
  WILOC_EXPECTS(max_rankings >= 1);
  std::vector<std::vector<rf::ApId>> rankings;
  rankings.emplace_back();  // start with one empty ranking

  const auto& readings = scan.readings;
  std::size_t i = 0;
  while (i < readings.size()) {
    // Find the tie group [i, j) of equal quantized RSSI.
    std::size_t j = i + 1;
    while (j < readings.size() &&
           readings[j].rssi_dbm == readings[i].rssi_dbm)
      ++j;
    std::vector<rf::ApId> group;
    group.reserve(j - i);
    for (std::size_t k = i; k < j; ++k) group.push_back(readings[k].ap);

    const bool expand =
        i < depth && group.size() > 1 &&
        rankings.size() * group.size() <= max_rankings;
    if (expand) {
      // Branch on every rotation of the group (full permutations explode
      // factorially; rotations cover each member appearing first, which
      // is what matters for tile selection).
      std::vector<std::vector<rf::ApId>> next;
      next.reserve(rankings.size() * group.size());
      for (const auto& base : rankings) {
        for (std::size_t rot = 0; rot < group.size(); ++rot) {
          auto extended = base;
          for (std::size_t k = 0; k < group.size(); ++k)
            extended.push_back(group[(rot + k) % group.size()]);
          next.push_back(std::move(extended));
        }
      }
      rankings = std::move(next);
    } else {
      for (auto& base : rankings)
        base.insert(base.end(), group.begin(), group.end());
    }
    i = j;
  }

  if (rankings.size() == 1 && rankings.front().empty()) return {};
  return rankings;
}

}  // namespace wiloc::svd
