#include "svd/positioning_index.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace wiloc::svd {

std::vector<std::vector<rf::ApId>> expand_tied_rankings(
    const rf::WifiScan& scan, std::size_t depth, std::size_t max_rankings) {
  WILOC_EXPECTS(max_rankings >= 1);
  std::vector<std::vector<rf::ApId>> rankings;
  rankings.reserve(max_rankings);
  rankings.emplace_back();  // start with one empty ranking
  rankings.front().reserve(scan.readings.size());

  const auto& readings = scan.readings;
  std::size_t i = 0;
  while (i < readings.size()) {
    // Find the tie group [i, j) of equal quantized RSSI. The readings
    // themselves are the group; no side copy is needed.
    std::size_t j = i + 1;
    while (j < readings.size() &&
           readings[j].rssi_dbm == readings[i].rssi_dbm)
      ++j;
    const std::size_t group_size = j - i;

    const bool expand = i < depth && group_size > 1 &&
                        rankings.size() * group_size <= max_rankings;
    if (expand) {
      // Branch on every rotation of the group (full permutations explode
      // factorially; rotations cover each member appearing first, which
      // is what matters for tile selection). The last rotation reuses the
      // base's storage, so the common tie pair costs one copy, not two.
      std::vector<std::vector<rf::ApId>> next;
      next.reserve(rankings.size() * group_size);
      for (auto& base : rankings) {
        const std::size_t base_size = base.size();
        for (std::size_t rot = 0; rot + 1 < group_size; ++rot) {
          std::vector<rf::ApId> extended;
          extended.reserve(base_size + (readings.size() - i));
          extended.assign(base.begin(), base.end());
          for (std::size_t k = 0; k < group_size; ++k)
            extended.push_back(readings[i + (rot + k) % group_size].ap);
          next.push_back(std::move(extended));
        }
        for (std::size_t k = 0; k < group_size; ++k)
          base.push_back(readings[i + (group_size - 1 + k) % group_size].ap);
        next.push_back(std::move(base));
      }
      rankings = std::move(next);
    } else {
      for (auto& base : rankings)
        for (std::size_t k = i; k < j; ++k) base.push_back(readings[k].ap);
    }
    i = j;
  }

  if (rankings.size() == 1 && rankings.front().empty()) return {};
  return rankings;
}

}  // namespace wiloc::svd
