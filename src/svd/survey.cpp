#include "svd/survey.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace wiloc::svd {

SurveyBuilder::SurveyBuilder(const roadnet::BusRoute& route,
                             SurveyParams params)
    : route_(&route), params_(params) {
  WILOC_EXPECTS(params_.bin_m > 0.0);
  WILOC_EXPECTS(params_.order >= 1);
  WILOC_EXPECTS(params_.min_samples >= 1);
  const auto count = static_cast<std::size_t>(
      std::ceil(route.length() / params_.bin_m));
  bins_.resize(std::max<std::size_t>(count, 1));
}

void SurveyBuilder::add_scan(double route_offset, const rf::WifiScan& scan) {
  if (scan.empty()) return;
  route_offset = std::clamp(route_offset, 0.0, route_->length());
  auto bin = static_cast<std::size_t>(route_offset / params_.bin_m);
  bin = std::min(bin, bins_.size() - 1);
  BinStats& stats = bins_[bin];
  ++stats.samples;
  ++scans_;
  for (const rf::ApReading& reading : scan.readings) {
    auto& slot = stats.rss[reading.ap];
    slot.first += reading.rssi_dbm;
    slot.second += 1;
  }
}

RankSignature SurveyBuilder::bin_signature(std::size_t bin) const {
  WILOC_EXPECTS(bin < bins_.size());
  const BinStats& stats = bins_[bin];
  if (stats.samples < params_.min_samples) return {};
  std::vector<std::pair<double, rf::ApId>> averaged;
  averaged.reserve(stats.rss.size());
  for (const auto& [ap, sum_count] : stats.rss) {
    if (sum_count.second < params_.min_ap_samples) continue;
    averaged.emplace_back(
        sum_count.first / static_cast<double>(sum_count.second), ap);
  }
  std::sort(averaged.begin(), averaged.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<rf::ApId> ranked;
  for (std::size_t i = 0; i < averaged.size() && i < params_.order; ++i)
    ranked.push_back(averaged[i].second);
  return RankSignature(std::move(ranked));
}

std::size_t SurveyBuilder::covered_bins() const {
  std::size_t covered = 0;
  for (std::size_t b = 0; b < bins_.size(); ++b)
    if (!bin_signature(b).empty()) ++covered;
  return covered;
}

std::unique_ptr<PositioningIndex> SurveyBuilder::build() const {
  // Per-bin signatures with forward fill over under-sampled gaps.
  std::vector<RankSignature> per_bin(bins_.size());
  RankSignature last;
  bool any = false;
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    RankSignature sig = bin_signature(b);
    if (sig.empty()) {
      sig = last;  // forward fill (may still be empty before first data)
    } else {
      last = sig;
      any = true;
    }
    per_bin[b] = std::move(sig);
  }
  if (!any)
    throw StateError("SurveyBuilder: no bin has enough samples to build");
  // Backward fill the leading gap.
  for (std::size_t b = bins_.size(); b-- > 0;) {
    if (per_bin[b].empty() && b + 1 < bins_.size())
      per_bin[b] = per_bin[b + 1];
  }

  // Coalesce equal-signature runs into intervals.
  std::vector<SurveyIndex::Interval> intervals;
  const double length = route_->length();
  double run_begin = 0.0;
  for (std::size_t b = 1; b < per_bin.size(); ++b) {
    if (!(per_bin[b] == per_bin[b - 1])) {
      const double boundary =
          std::min(length, static_cast<double>(b) * params_.bin_m);
      intervals.push_back({per_bin[b - 1], run_begin, boundary});
      run_begin = boundary;
    }
  }
  intervals.push_back({per_bin.back(), run_begin, length});
  return std::make_unique<SurveyIndex>(length, std::move(intervals),
                                       params_);
}

SurveyIndex::SurveyIndex(double route_length,
                         std::vector<Interval> intervals,
                         SurveyParams params)
    : length_(route_length),
      params_(params),
      intervals_(std::move(intervals)) {
  WILOC_EXPECTS(!intervals_.empty());
  std::uint32_t max_ap = 0;
  bool any_ap = false;
  for (const Interval& iv : intervals_)
    for (const rf::ApId ap : iv.signature.aps()) {
      max_ap = std::max(max_ap, ap.value());
      any_ap = true;
    }
  known_aps_.assign(any_ap ? max_ap + 1 : 0, false);
  for (std::uint32_t i = 0; i < intervals_.size(); ++i) {
    by_signature_[intervals_[i].signature].push_back(i);
    for (const rf::ApId ap : intervals_[i].signature.aps())
      known_aps_[ap.index()] = true;
  }
}

bool SurveyIndex::knows_ap(rf::ApId ap) const {
  return ap.index() < known_aps_.size() && known_aps_[ap.index()];
}

std::vector<Candidate> SurveyIndex::locate(
    const std::vector<rf::ApId>& observed) const {
  if (observed.empty()) return {};
  std::vector<Candidate> out;

  const RankSignature key = RankSignature::top_k(observed, params_.order);
  if (const auto it = by_signature_.find(key); it != by_signature_.end()) {
    for (const std::uint32_t idx : it->second)
      out.push_back({intervals_[idx].mid(), 1.0});
    if (out.size() > params_.max_candidates)
      out.resize(params_.max_candidates);
    return out;
  }

  std::vector<std::pair<double, std::uint32_t>> scored;
  for (std::uint32_t i = 0; i < intervals_.size(); ++i) {
    const double s = rank_consistency(observed, intervals_[i].signature);
    if (s >= params_.min_fallback_score) scored.emplace_back(s, i);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  const std::size_t take = std::min<std::size_t>(params_.max_candidates,
                                                 scored.size());
  for (std::size_t i = 0; i < take; ++i)
    out.push_back({intervals_[scored[i].second].mid(), scored[i].first});
  return out;
}

}  // namespace wiloc::svd
