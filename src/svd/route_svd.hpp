// Route-restricted Signal Voronoi Diagram.
//
// The mobility constraint (Definition 4: a bus follows its route) means
// positioning only ever needs the SVD *along the route polyline*. RouteSvd
// samples the route at a fine arc-length step, computes the k-order rank
// signature of each sample from the expected RSS field, and coalesces
// equal-signature runs into intervals: the road sub-segments e_ij of
// Definition 5, computed directly. Locating a scan is then a hash lookup
// (exact signature) or, for a noisy / degraded signature (e.g. after an
// AP dies), a consistency scoring pass over the candidate intervals
// prefiltered through an inverted AP -> interval posting-list index.
// locate() is const and safe to call concurrently from many threads
// (scratch state is thread-local).
#pragma once

#include <unordered_map>

#include "roadnet/route.hpp"
#include "svd/ap_index.hpp"
#include "svd/positioning_index.hpp"
#include "svd/signature.hpp"

namespace wiloc::svd {

struct RouteSvdParams {
  std::size_t order = 2;      ///< signature length (Fig. 9b sweeps this)
  double sample_step_m = 1.0; ///< route sampling resolution
  double floor_dbm = -95.0;   ///< audibility floor for the mean field
  std::size_t max_candidates = 8;   ///< cap on returned candidates
  double min_fallback_score = 0.15; ///< scored matches below this are noise
};

/// The per-route positioning structure.
class RouteSvd final : public PositioningIndex {
 public:
  /// A maximal run of route offsets sharing one signature.
  struct Interval {
    RankSignature signature;
    double begin;  ///< route offset, inclusive
    double end;    ///< route offset, exclusive (== next begin)
    double mid() const { return (begin + end) / 2.0; }
    double length() const { return end - begin; }
  };

  /// Builds the index. `model` is only used during construction.
  RouteSvd(const roadnet::BusRoute& route,
           std::vector<rf::AccessPoint> aps,
           const rf::LogDistanceModel& model, RouteSvdParams params = {});

  const std::vector<Interval>& intervals() const { return intervals_; }
  std::size_t order() const { return params_.order; }

  /// Signature governing the given route offset (clamped).
  const RankSignature& signature_at(double route_offset) const;

  /// Distinct signatures present along the route.
  std::size_t distinct_signature_count() const { return by_signature_.size(); }

  /// Mean interval length (m): the resolution positioning can achieve.
  double mean_interval_length() const;

  /// Inverted index: ids (ascending) of the intervals whose signature
  /// contains the AP. Empty for APs outside the construction set. The
  /// degraded locate path unions these posting lists to prefilter the
  /// candidate intervals instead of scoring the whole route.
  const std::vector<std::uint32_t>& postings_for(rf::ApId ap) const;

  std::vector<Candidate> locate(
      const std::vector<rf::ApId>& observed) const override;

  double route_length() const override { return length_; }

  /// Whether the AP participated in construction.
  bool knows_ap(rf::ApId ap) const override;

  void set_metrics(const LocateMetrics& metrics) override {
    metrics_ = metrics;
  }

 private:
  LocateMetrics metrics_;
  RouteSvdParams params_;
  double length_ = 0.0;
  std::vector<Interval> intervals_;
  std::unordered_map<RankSignature, std::vector<std::uint32_t>,
                     RankSignatureHash>
      by_signature_;
  std::vector<bool> known_aps_;
  /// ap.index() -> interval ids (ascending) whose signature contains it.
  std::vector<std::vector<std::uint32_t>> postings_;
  /// Monotone instance tag: lets the thread-local locate memo detect a
  /// stale entry even if a new index reuses this object's address.
  std::uint64_t build_id_ = 0;
};

}  // namespace wiloc::svd
