#include "svd/ap_index.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace wiloc::svd {

ApIndex::ApIndex(std::vector<rf::AccessPoint> aps, double bucket_size_m)
    : aps_(std::move(aps)), bucket_(bucket_size_m) {
  WILOC_EXPECTS(bucket_ > 0.0);
  for (const auto& ap : aps_) bounds_.expand(ap.position);
  if (bounds_.empty()) bounds_ = geo::Aabb({0, 0}, {1, 1});
  bounds_.inflate(bucket_);
  nx_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(bounds_.width() / bucket_)));
  ny_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(bounds_.height() / bucket_)));
  cells_.resize(nx_ * ny_);
  for (std::uint32_t i = 0; i < aps_.size(); ++i)
    cells_[cell_of(aps_[i].position)].ap_indices.push_back(i);
}

std::size_t ApIndex::cell_of(geo::Point p) const {
  const auto clamp_idx = [](double v, std::size_t n) {
    if (v < 0.0) return std::size_t{0};
    const auto i = static_cast<std::size_t>(v);
    return std::min(i, n - 1);
  };
  const std::size_t cx = clamp_idx((p.x - bounds_.min().x) / bucket_, nx_);
  const std::size_t cy = clamp_idx((p.y - bounds_.min().y) / bucket_, ny_);
  return cy * nx_ + cx;
}

void ApIndex::query(geo::Point x, double radius,
                    std::vector<const rf::AccessPoint*>& out) const {
  WILOC_EXPECTS(radius >= 0.0);
  out.clear();
  const double r2 = radius * radius;
  const auto span = static_cast<std::ptrdiff_t>(radius / bucket_) + 1;
  const auto cx = static_cast<std::ptrdiff_t>(
      (x.x - bounds_.min().x) / bucket_);
  const auto cy = static_cast<std::ptrdiff_t>(
      (x.y - bounds_.min().y) / bucket_);
  for (std::ptrdiff_t dy = -span; dy <= span; ++dy) {
    const std::ptrdiff_t yy = cy + dy;
    if (yy < 0 || yy >= static_cast<std::ptrdiff_t>(ny_)) continue;
    for (std::ptrdiff_t dx = -span; dx <= span; ++dx) {
      const std::ptrdiff_t xx = cx + dx;
      if (xx < 0 || xx >= static_cast<std::ptrdiff_t>(nx_)) continue;
      const Cell& cell =
          cells_[static_cast<std::size_t>(yy) * nx_ +
                 static_cast<std::size_t>(xx)];
      for (const std::uint32_t i : cell.ap_indices) {
        if (geo::distance2(aps_[i].position, x) <= r2)
          out.push_back(&aps_[i]);
      }
    }
  }
}

double ApIndex::hearing_radius(const std::vector<rf::AccessPoint>& aps,
                               const rf::LogDistanceModel& model,
                               double floor_dbm) {
  double radius = 1.0;
  const double slack = model.params().shadowing_sigma_db + 1.0;
  for (const auto& ap : aps) {
    // Solve P0 - 10 n log10(d/d0) = floor - slack for d.
    const double exponent =
        (ap.tx_power_dbm - (floor_dbm - slack)) /
        (10.0 * ap.path_loss_exponent);
    const double d =
        model.params().reference_distance_m * std::pow(10.0, exponent);
    radius = std::max(radius, d);
  }
  return radius;
}

}  // namespace wiloc::svd
