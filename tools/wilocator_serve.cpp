// wilocator_serve: the WiLocator serving binary.
//
// Builds the paper's corridor city, trains the server on simulated
// history days (standing in for the transit agency's archive), then
// serves the HTTP API until SIGINT/SIGTERM. With --persist-dir the
// server journals learned state and the service's background thread
// checkpoints it off the serving path — kill -9 the process and restart
// it on the same directory to watch recovery replay (the e2e test does
// exactly that).
//
// Prints "LISTENING <port>" on stdout once ready; harnesses parse it.
//
// Usage: wilocator_serve [options]
//   --port N               bind port (default 0 = ephemeral)
//   --http-loops N         SO_REUSEPORT event loops (default 1; see
//                          DESIGN.md §15 for the multi-core path)
//   --persist-dir PATH     enable durable state under PATH
//   --history-days N       training days before serving (default 3)
//   --workers N            ingest worker threads (default 2)
//   --snapshot-interval S  sim-seconds between checkpoints (default 900)
//   --checkpoint-poll S    wall-seconds between due-checks (default 0.25)
//   --no-train             skip history (serve cold; predictions 404)
//   --metrics-period S     NDJSON metrics cadence to stderr (default 60)
//   --request-deadline S   per-request budget; 0 disables (default 0)
//   --stall-timeout S      mid-request progress timeout => 408 (default 10)
//   --shed-latency-us U    admission EWMA watermark; 0 disables (default 0)
//   --shed-inflight N      admission inflight watermark; 0 disables
//   --rate-limit RPS       per-peer token bucket; 0 disables (default 0)
//   --rate-burst N         token bucket burst size (default 32)
//   --arrival-coalesce S   min wall-seconds between arrival-snapshot
//                          refreshes; 0 = refresh per batch (default 0.02)
//
// Cluster mode (see DESIGN.md §14): give every node the OTHER nodes as
// --peers and it tails their journals into its own store, so predictions
// over shared segments converge cluster-wide.
//   --node-id ID           this node's name in logs/readyz (default "node")
//   --peers LIST           peer nodes to tail, "id=host:port,..." (off
//                          by default; requires the peers to persist)
//   --replication-poll S   wall-seconds between tail passes (default 0.05)

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "cluster/replication.hpp"
#include "common.hpp"
#include "net/service.hpp"

namespace {

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig); }

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--port N] [--http-loops N] [--persist-dir PATH]"
               " [--history-days N]"
               " [--workers N] [--snapshot-interval S]"
               " [--checkpoint-poll S] [--no-train] [--metrics-period S]"
               " [--request-deadline S] [--stall-timeout S]"
               " [--shed-latency-us U] [--shed-inflight N]"
               " [--rate-limit RPS] [--rate-burst N]"
               " [--arrival-coalesce S] [--node-id ID] [--peers LIST]"
               " [--replication-poll S]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wiloc;

  std::uint16_t port = 0;
  std::string persist_dir;
  int history_days = 3;
  std::size_t workers = 2;
  double snapshot_interval_s = 15.0 * 60.0;
  double checkpoint_poll_s = 0.25;
  bool train = true;
  double metrics_period_s = 60.0;
  double request_deadline_s = 0.0;
  int http_loops = 1;
  double stall_timeout_s = 10.0;
  double shed_latency_us = 0.0;
  std::size_t shed_inflight = 0;
  double rate_limit_rps = 0.0;
  double rate_burst = 32.0;
  double arrival_coalesce_s = 0.02;
  std::string node_id = "node";
  std::string peers_spec;
  double replication_poll_s = 0.05;

  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0)
      port = static_cast<std::uint16_t>(std::atoi(need("--port")));
    else if (std::strcmp(argv[i], "--http-loops") == 0)
      http_loops = std::max(
          1, std::atoi(need("--http-loops")));
    else if (std::strcmp(argv[i], "--persist-dir") == 0)
      persist_dir = need("--persist-dir");
    else if (std::strcmp(argv[i], "--history-days") == 0)
      history_days = std::atoi(need("--history-days"));
    else if (std::strcmp(argv[i], "--workers") == 0)
      workers = static_cast<std::size_t>(std::atoi(need("--workers")));
    else if (std::strcmp(argv[i], "--snapshot-interval") == 0)
      snapshot_interval_s = std::atof(need("--snapshot-interval"));
    else if (std::strcmp(argv[i], "--checkpoint-poll") == 0)
      checkpoint_poll_s = std::atof(need("--checkpoint-poll"));
    else if (std::strcmp(argv[i], "--no-train") == 0)
      train = false;
    else if (std::strcmp(argv[i], "--metrics-period") == 0)
      metrics_period_s = std::atof(need("--metrics-period"));
    else if (std::strcmp(argv[i], "--request-deadline") == 0)
      request_deadline_s = std::atof(need("--request-deadline"));
    else if (std::strcmp(argv[i], "--stall-timeout") == 0)
      stall_timeout_s = std::atof(need("--stall-timeout"));
    else if (std::strcmp(argv[i], "--shed-latency-us") == 0)
      shed_latency_us = std::atof(need("--shed-latency-us"));
    else if (std::strcmp(argv[i], "--shed-inflight") == 0)
      shed_inflight =
          static_cast<std::size_t>(std::atoi(need("--shed-inflight")));
    else if (std::strcmp(argv[i], "--rate-limit") == 0)
      rate_limit_rps = std::atof(need("--rate-limit"));
    else if (std::strcmp(argv[i], "--rate-burst") == 0)
      rate_burst = std::atof(need("--rate-burst"));
    else if (std::strcmp(argv[i], "--arrival-coalesce") == 0)
      arrival_coalesce_s = std::atof(need("--arrival-coalesce"));
    else if (std::strcmp(argv[i], "--node-id") == 0)
      node_id = need("--node-id");
    else if (std::strcmp(argv[i], "--peers") == 0)
      peers_spec = need("--peers");
    else if (std::strcmp(argv[i], "--replication-poll") == 0)
      replication_poll_s = std::atof(need("--replication-poll"));
    else
      usage(argv[0]);
  }

  const sim::City city = sim::build_paper_city();
  const sim::TrafficModel traffic(2016);
  const sim::FleetPlan plan = sim::default_fleet_plan(city);

  core::ServerConfig config;
  config.engine.workers = workers;
  config.engine.queue_capacity = 4096;
  config.arrival.min_refresh_wall_s = arrival_coalesce_s;
  config.persist.dir = persist_dir;
  config.persist.snapshot_interval_s = snapshot_interval_s;
  core::WiLocatorServer server(city.route_pointers(), city.ap_snapshot(),
                               *city.rf_model, DaySlots::paper_five_slots(),
                               config);
  if (server.recovered())
    std::cerr << "recovered learned state from " << persist_dir << "\n";

  if (train && !server.recovered()) {
    Rng rng(7);
    bench::train_server(server, city, traffic, plan, /*first_day=*/0,
                        history_days, rng);
    std::cerr << "trained on " << history_days << " history days\n";
  }

  obs::ReporterOptions reporter_options;
  reporter_options.period_s = metrics_period_s;
  // Not attach_reporter()ed: the reporter is declared after the server,
  // so the service (stopped first) owns the final flush instead.
  obs::Reporter reporter(server.metrics_registry(), std::cerr,
                         reporter_options);

  net::ServiceOptions options;
  options.http.port = port;
  options.http.loops = static_cast<std::size_t>(http_loops);
  options.http.request_deadline_s = request_deadline_s;
  options.http.stall_timeout_s = stall_timeout_s;
  options.http.admission_latency_watermark_us = shed_latency_us;
  options.http.admission_inflight_watermark = shed_inflight;
  options.http.rate_limit_rps = rate_limit_rps;
  options.http.rate_limit_burst = rate_burst;
  options.checkpoint_poll_s = checkpoint_poll_s;
  options.reporter = &reporter;
  net::WiLocatorService service(server, options);
  service.start();
  service.set_ready(true);

  std::unique_ptr<cluster::ReplicationTailer> tailer;
  if (!peers_spec.empty()) {
    cluster::ReplicationOptions repl;
    repl.poll_interval_s = replication_poll_s;
    tailer = std::make_unique<cluster::ReplicationTailer>(
        service, cluster::NodeInfo::parse_list(peers_spec), repl,
        &server.metrics_registry());
    tailer->start();
    std::cerr << node_id << ": tailing " << peers_spec << "\n";
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::cout << "LISTENING " << service.port() << std::endl;

  while (g_signal.load() == 0 && service.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (const auto now = server.last_event_time(); now.has_value())
      reporter.maybe_report(*now);
  }

  std::cerr << "shutting down (signal " << g_signal.load() << ")\n";
  if (tailer != nullptr) tailer->stop();
  service.stop();
  return 0;
}
