#!/usr/bin/env python3
"""Bench regression gate.

Compares freshly produced BENCH_*.json files against the baselines
committed under bench/baselines/ and fails (exit 1) when a guarded
metric regresses by more than the tolerance. Machines differ, so the
gate only fires on *regressions*: a higher-is-better metric may be
arbitrarily faster than baseline, and vice versa.

Guarded metrics:
  BENCH_throughput.json  serial scans/s (workers == 0 row)  higher better
  BENCH_throughput.json  locate_ns_per_op                   lower better
  BENCH_http.json        scans_per_sec                      higher better
  BENCH_http.json        arrival_p99_us                     lower better
  BENCH_http.json        read_mix_arrival_p99_us            lower better
  BENCH_http.json        arrival_cache_hit_rate             higher better
  BENCH_cluster.json     replication_records_per_s          higher better
  BENCH_cluster.json     failover_goodput_rps               higher better
                         (BENCH_http / BENCH_cluster rows are skipped
                         when either side lacks the file)

Usage:
  bench_gate.py --bench-dir build [--baseline-dir bench/baselines]
                [--report bench_gate_report.json]
  bench_gate.py --self-test

The tolerance defaults to 0.25 (25%) and can be overridden with the
BENCH_GATE_TOLERANCE environment variable — useful on noisy shared CI
runners.
"""

import argparse
import json
import os
import sys

DEFAULT_TOLERANCE = 0.25


def serial_scans_per_sec(doc):
    for row in doc.get("rows", []):
        if row.get("workers") == 0:
            return row.get("scans_per_sec")
    return None


# (file, label, extractor, higher_is_better, required)
METRICS = [
    ("BENCH_throughput.json", "serial_scans_per_sec",
     serial_scans_per_sec, True, True),
    ("BENCH_throughput.json", "locate_ns_per_op",
     lambda doc: doc.get("locate_ns_per_op"), False, True),
    ("BENCH_http.json", "scans_per_sec",
     lambda doc: doc.get("scans_per_sec"), True, False),
    ("BENCH_http.json", "arrival_p99_us",
     lambda doc: doc.get("arrival_p99_us"), False, False),
    ("BENCH_http.json", "read_mix_arrival_p99_us",
     lambda doc: doc.get("read_mix_arrival_p99_us"), False, False),
    ("BENCH_http.json", "arrival_cache_hit_rate",
     lambda doc: doc.get("arrival_cache_hit_rate"), True, False),
    ("BENCH_http.json", "chaos_goodput_rps",
     lambda doc: doc.get("chaos_goodput_rps"), True, False),
    ("BENCH_http.json", "shed_p99_us",
     lambda doc: doc.get("shed_p99_us"), False, False),
    ("BENCH_cluster.json", "replication_records_per_s",
     lambda doc: doc.get("replication_records_per_s"), True, False),
    ("BENCH_cluster.json", "failover_goodput_rps",
     lambda doc: doc.get("failover_goodput_rps"), True, False),
]


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        return None


def evaluate(bench_dir, baseline_dir, tolerance):
    """Returns (results, failures). Each result is a dict row."""
    results = []
    failures = []
    for filename, label, extract, higher_better, required in METRICS:
        current_doc = load(os.path.join(bench_dir, filename))
        baseline_doc = load(os.path.join(baseline_dir, filename))
        name = f"{filename}:{label}"
        if current_doc is None or baseline_doc is None:
            missing = "current" if current_doc is None else "baseline"
            row = {"metric": name, "status": "skipped",
                   "reason": f"missing {missing} file"}
            if required and current_doc is None:
                row["status"] = "failed"
                row["reason"] = f"required bench output {filename} missing"
                failures.append(row)
            results.append(row)
            continue
        current = extract(current_doc)
        baseline = extract(baseline_doc)
        if current is None or baseline is None or baseline <= 0:
            # Optional metrics (e.g. the chaos sweep on a run where no
            # request shed) skip rather than fail on a missing value.
            row = {"metric": name,
                   "status": "failed" if required else "skipped",
                   "reason": "metric missing or non-positive"}
            if required:
                failures.append(row)
            results.append(row)
            continue
        if higher_better:
            # e.g. 0.25 tolerance: fail below 75% of baseline throughput.
            ratio = current / baseline
            regressed = ratio < 1.0 - tolerance
        else:
            # lower-is-better: fail above 125% of baseline latency.
            ratio = current / baseline
            regressed = ratio > 1.0 + tolerance
        row = {
            "metric": name,
            "status": "failed" if regressed else "passed",
            "current": current,
            "baseline": baseline,
            "ratio": round(ratio, 4),
            "higher_is_better": higher_better,
            "tolerance": tolerance,
        }
        if regressed:
            failures.append(row)
        results.append(row)
    return results, failures


def run_gate(args, tolerance):
    results, failures = evaluate(args.bench_dir, args.baseline_dir,
                                 tolerance)
    report = {
        "tolerance": tolerance,
        "bench_dir": args.bench_dir,
        "baseline_dir": args.baseline_dir,
        "results": results,
        "ok": not failures,
    }
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    for row in results:
        status = row["status"].upper()
        detail = ""
        if "ratio" in row:
            direction = "higher=better" if row["higher_is_better"] \
                else "lower=better"
            detail = (f" current={row['current']:.6g}"
                      f" baseline={row['baseline']:.6g}"
                      f" ratio={row['ratio']} ({direction})")
        elif "reason" in row:
            detail = f" {row['reason']}"
        print(f"[{status:7s}] {row['metric']}{detail}")
    if failures:
        print(f"bench gate: {len(failures)} metric(s) regressed beyond "
              f"{tolerance:.0%} tolerance", file=sys.stderr)
        return 1
    print("bench gate: all guarded metrics within tolerance")
    return 0


def self_test(tolerance):
    """Feeds the gate a synthetic 2x regression; it must fail. Then a
    matching pair; it must pass."""
    import tempfile

    baseline = {
        "rows": [{"workers": 0, "scans_per_sec": 100000.0}],
        "locate_ns_per_op": 300.0,
    }
    regressed = {
        "rows": [{"workers": 0, "scans_per_sec": 50000.0}],  # 2x slower
        "locate_ns_per_op": 600.0,                            # 2x slower
    }
    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "baseline")
        bench_dir = os.path.join(tmp, "bench")
        os.makedirs(base_dir)
        os.makedirs(bench_dir)
        for d, doc in ((base_dir, baseline), (bench_dir, regressed)):
            with open(os.path.join(d, "BENCH_throughput.json"), "w",
                      encoding="utf-8") as fh:
                json.dump(doc, fh)
        _, failures = evaluate(bench_dir, base_dir, tolerance)
        if len(failures) != 2:
            print(f"self-test: expected 2 failures on a synthetic 2x "
                  f"regression, got {len(failures)}", file=sys.stderr)
            return 1
        # Identical numbers must pass cleanly.
        with open(os.path.join(bench_dir, "BENCH_throughput.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(baseline, fh)
        _, failures = evaluate(bench_dir, base_dir, tolerance)
        if failures:
            print("self-test: identical benches should pass, got "
                  f"{failures}", file=sys.stderr)
            return 1
        # A modest wobble inside tolerance must pass too.
        wobble = {
            "rows": [{"workers": 0, "scans_per_sec": 90000.0}],
            "locate_ns_per_op": 330.0,
        }
        with open(os.path.join(bench_dir, "BENCH_throughput.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(wobble, fh)
        _, failures = evaluate(bench_dir, base_dir, tolerance)
        if failures:
            print(f"self-test: in-tolerance wobble should pass, got "
                  f"{failures}", file=sys.stderr)
            return 1
    print("self-test: gate fails a 2x regression and passes "
          "in-tolerance runs")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-dir", default="build",
                        help="directory holding fresh BENCH_*.json")
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        help="directory holding committed baselines")
    parser.add_argument("--report", default="",
                        help="write a JSON report to this path")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate catches a synthetic "
                             "2x regression")
    args = parser.parse_args()

    try:
        tolerance = float(os.environ.get("BENCH_GATE_TOLERANCE",
                                         DEFAULT_TOLERANCE))
    except ValueError:
        print("BENCH_GATE_TOLERANCE must be a float", file=sys.stderr)
        return 2
    if not 0.0 < tolerance < 1.0:
        print("BENCH_GATE_TOLERANCE must be in (0, 1)", file=sys.stderr)
        return 2

    if args.self_test:
        return self_test(tolerance)
    return run_gate(args, tolerance)


if __name__ == "__main__":
    sys.exit(main())
