#!/usr/bin/env python3
"""Bench regression gate.

Compares freshly produced BENCH_*.json files against the baselines
committed under bench/baselines/ and fails (exit 1) when a guarded
metric regresses by more than the tolerance. Machines differ, so the
gate only fires on *regressions*: a higher-is-better metric may be
arbitrarily faster than baseline, and vice versa.

Guarded metrics:
  BENCH_throughput.json  serial scans/s (workers == 0 row)  higher better
  BENCH_throughput.json  locate_ns_per_op                   lower better
  BENCH_http.json        scans_per_sec                      higher better
  BENCH_http.json        arrival_p99_us                     lower better
  BENCH_http.json        read_mix_arrival_p99_us            lower better
  BENCH_http.json        arrival_cache_hit_rate             higher better
  BENCH_cluster.json     replication_records_per_s          higher better
  BENCH_cluster.json     failover_goodput_rps               higher better
                         (BENCH_http / BENCH_cluster rows are skipped
                         when either side lacks the file)

Usage:
  bench_gate.py --bench-dir build [--baseline-dir bench/baselines]
                [--report bench_gate_report.json] [--warn-only]
                [--allow-concurrency-mismatch]
  bench_gate.py --self-test

The tolerance defaults to 0.25 (25%) and can be overridden with the
BENCH_GATE_TOLERANCE environment variable — useful on noisy shared CI
runners.

Per-metric overrides: a baseline file may carry a top-level "_gate"
object keyed by metric label, e.g.

  "_gate": {"serial_scans_per_sec":
            {"tolerance": 0.1, "higher_is_better": true}}

Each entry may tighten/loosen "tolerance" for that one metric or flip
"higher_is_better" (for derived metrics whose direction the built-in
table gets wrong). Overrides live next to the numbers they guard so
promoting a new baseline (tools/promote_baseline.py) carries its gate
policy along.

Hardware check: multi-worker speedups are only comparable on machines
with the same core count, so when the committed BENCH_throughput.json
records "hardware_concurrency" and it differs from this machine's, the
gate HARD-FAILS rather than silently comparing apples to oranges. Pass
--allow-concurrency-mismatch (e.g. for a local smoke run on a laptop)
to downgrade that to a warning that also skips the throughput rows.

--warn-only reports regressions and writes the JSON report but always
exits 0 — the scheduled full-suite workflow uses it so a noisy nightly
never blocks anyone, while the artifact still shows the drift.
"""

import argparse
import json
import os
import sys

DEFAULT_TOLERANCE = 0.25


def serial_scans_per_sec(doc):
    for row in doc.get("rows", []):
        if row.get("workers") == 0:
            return row.get("scans_per_sec")
    return None


def workers4_scans_per_sec(doc):
    for row in doc.get("rows", []):
        if row.get("workers") == 4 and row.get("noise") == 0:
            return row.get("scans_per_sec")
    return None


# (file, label, extractor, higher_is_better, required)
METRICS = [
    ("BENCH_throughput.json", "serial_scans_per_sec",
     serial_scans_per_sec, True, True),
    # The multi-core headline. Optional: smoke runs don't sweep workers.
    ("BENCH_throughput.json", "workers4_scans_per_sec[noise=0]",
     workers4_scans_per_sec, True, False),
    ("BENCH_throughput.json", "locate_ns_per_op",
     lambda doc: doc.get("locate_ns_per_op"), False, True),
    ("BENCH_http.json", "scans_per_sec",
     lambda doc: doc.get("scans_per_sec"), True, False),
    ("BENCH_http.json", "arrival_p99_us",
     lambda doc: doc.get("arrival_p99_us"), False, False),
    ("BENCH_http.json", "read_mix_arrival_p99_us",
     lambda doc: doc.get("read_mix_arrival_p99_us"), False, False),
    ("BENCH_http.json", "arrival_cache_hit_rate",
     lambda doc: doc.get("arrival_cache_hit_rate"), True, False),
    ("BENCH_http.json", "chaos_goodput_rps",
     lambda doc: doc.get("chaos_goodput_rps"), True, False),
    ("BENCH_http.json", "shed_p99_us",
     lambda doc: doc.get("shed_p99_us"), False, False),
    ("BENCH_cluster.json", "replication_records_per_s",
     lambda doc: doc.get("replication_records_per_s"), True, False),
    ("BENCH_cluster.json", "failover_goodput_rps",
     lambda doc: doc.get("failover_goodput_rps"), True, False),
]


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        return None


def gate_override(baseline_doc, label):
    """The baseline's per-metric "_gate" entry for `label`, or {}."""
    if not isinstance(baseline_doc, dict):
        return {}
    overrides = baseline_doc.get("_gate")
    if not isinstance(overrides, dict):
        return {}
    entry = overrides.get(label)
    return entry if isinstance(entry, dict) else {}


def check_concurrency(baseline_dir, allow_mismatch):
    """Returns (failure_row_or_None, skip_throughput).

    The committed throughput baseline pins the core count it was
    measured on; comparing its multi-worker rows on a machine with a
    different count is meaningless, so a mismatch is a hard failure
    unless explicitly allowed (which skips the throughput rows instead).
    """
    doc = load(os.path.join(baseline_dir, "BENCH_throughput.json"))
    if doc is None:
        return None, False
    recorded = doc.get("hardware_concurrency")
    machine = os.cpu_count()
    if not isinstance(recorded, (int, float)) or machine is None:
        return None, False
    if int(recorded) == int(machine):
        return None, False
    row = {
        "metric": "BENCH_throughput.json:hardware_concurrency",
        "status": "skipped" if allow_mismatch else "failed",
        "reason": (f"baseline measured on {int(recorded)} cores, this "
                   f"machine has {int(machine)}; "
                   + ("throughput rows skipped "
                      "(--allow-concurrency-mismatch)" if allow_mismatch
                      else "re-promote the baseline from a matching "
                           "runner or pass --allow-concurrency-mismatch")),
    }
    return row, True


def evaluate(bench_dir, baseline_dir, tolerance,
             allow_concurrency_mismatch=False):
    """Returns (results, failures). Each result is a dict row."""
    results = []
    failures = []
    concurrency_row, skip_throughput = check_concurrency(
        baseline_dir, allow_concurrency_mismatch)
    if concurrency_row is not None:
        results.append(concurrency_row)
        if concurrency_row["status"] == "failed":
            failures.append(concurrency_row)
    for filename, label, extract, higher_better, required in METRICS:
        name = f"{filename}:{label}"
        if skip_throughput and filename == "BENCH_throughput.json":
            results.append({"metric": name, "status": "skipped",
                            "reason": "hardware_concurrency mismatch"})
            continue
        current_doc = load(os.path.join(bench_dir, filename))
        baseline_doc = load(os.path.join(baseline_dir, filename))
        override = gate_override(baseline_doc, label)
        metric_tolerance = override.get("tolerance", tolerance)
        higher_better = override.get("higher_is_better", higher_better)
        if current_doc is None or baseline_doc is None:
            missing = "current" if current_doc is None else "baseline"
            row = {"metric": name, "status": "skipped",
                   "reason": f"missing {missing} file"}
            if required and current_doc is None:
                row["status"] = "failed"
                row["reason"] = f"required bench output {filename} missing"
                failures.append(row)
            results.append(row)
            continue
        current = extract(current_doc)
        baseline = extract(baseline_doc)
        if current is None or baseline is None or baseline <= 0:
            # Optional metrics (e.g. the chaos sweep on a run where no
            # request shed) skip rather than fail on a missing value.
            row = {"metric": name,
                   "status": "failed" if required else "skipped",
                   "reason": "metric missing or non-positive"}
            if required:
                failures.append(row)
            results.append(row)
            continue
        ratio = current / baseline
        if higher_better:
            # e.g. 0.25 tolerance: fail below 75% of baseline throughput.
            regressed = ratio < 1.0 - metric_tolerance
        else:
            # lower-is-better: fail above 125% of baseline latency.
            regressed = ratio > 1.0 + metric_tolerance
        row = {
            "metric": name,
            "status": "failed" if regressed else "passed",
            "current": current,
            "baseline": baseline,
            "ratio": round(ratio, 4),
            "higher_is_better": higher_better,
            "tolerance": metric_tolerance,
        }
        if override:
            row["override"] = override
        if regressed:
            failures.append(row)
        results.append(row)
    return results, failures


def run_gate(args, tolerance):
    results, failures = evaluate(args.bench_dir, args.baseline_dir,
                                 tolerance, args.allow_concurrency_mismatch)
    report = {
        "tolerance": tolerance,
        "bench_dir": args.bench_dir,
        "baseline_dir": args.baseline_dir,
        "warn_only": args.warn_only,
        "results": results,
        "ok": not failures,
    }
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    for row in results:
        status = row["status"].upper()
        detail = ""
        if "ratio" in row:
            direction = "higher=better" if row["higher_is_better"] \
                else "lower=better"
            detail = (f" current={row['current']:.6g}"
                      f" baseline={row['baseline']:.6g}"
                      f" ratio={row['ratio']} ({direction}"
                      f" tol={row['tolerance']:.0%})")
        elif "reason" in row:
            detail = f" {row['reason']}"
        print(f"[{status:7s}] {row['metric']}{detail}")
    if failures:
        print(f"bench gate: {len(failures)} metric(s) failed",
              file=sys.stderr)
        if args.warn_only:
            print("bench gate: --warn-only, reporting without failing",
                  file=sys.stderr)
            return 0
        return 1
    print("bench gate: all guarded metrics within tolerance")
    return 0


def self_test(tolerance):
    """Feeds the gate a synthetic 2x regression; it must fail. Then a
    matching pair; it must pass."""
    import tempfile

    baseline = {
        "rows": [{"workers": 0, "scans_per_sec": 100000.0}],
        "locate_ns_per_op": 300.0,
    }
    regressed = {
        "rows": [{"workers": 0, "scans_per_sec": 50000.0}],  # 2x slower
        "locate_ns_per_op": 600.0,                            # 2x slower
    }
    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "baseline")
        bench_dir = os.path.join(tmp, "bench")
        os.makedirs(base_dir)
        os.makedirs(bench_dir)
        for d, doc in ((base_dir, baseline), (bench_dir, regressed)):
            with open(os.path.join(d, "BENCH_throughput.json"), "w",
                      encoding="utf-8") as fh:
                json.dump(doc, fh)
        _, failures = evaluate(bench_dir, base_dir, tolerance)
        if len(failures) != 2:
            print(f"self-test: expected 2 failures on a synthetic 2x "
                  f"regression, got {len(failures)}", file=sys.stderr)
            return 1
        # Identical numbers must pass cleanly.
        with open(os.path.join(bench_dir, "BENCH_throughput.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(baseline, fh)
        _, failures = evaluate(bench_dir, base_dir, tolerance)
        if failures:
            print("self-test: identical benches should pass, got "
                  f"{failures}", file=sys.stderr)
            return 1
        # A modest wobble inside tolerance must pass too.
        wobble = {
            "rows": [{"workers": 0, "scans_per_sec": 90000.0}],
            "locate_ns_per_op": 330.0,
        }
        with open(os.path.join(bench_dir, "BENCH_throughput.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(wobble, fh)
        _, failures = evaluate(bench_dir, base_dir, tolerance)
        if failures:
            print(f"self-test: in-tolerance wobble should pass, got "
                  f"{failures}", file=sys.stderr)
            return 1

        # A "_gate" override tightening one metric to 5% must catch the
        # same wobble that the default tolerance let through.
        tightened = dict(baseline)
        tightened["_gate"] = {
            "serial_scans_per_sec": {"tolerance": 0.05}}
        with open(os.path.join(base_dir, "BENCH_throughput.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(tightened, fh)
        _, failures = evaluate(bench_dir, base_dir, tolerance)
        if (len(failures) != 1
                or "serial_scans_per_sec" not in failures[0]["metric"]):
            print(f"self-test: 5% override should fail the 10% wobble "
                  f"on exactly serial_scans_per_sec, got {failures}",
                  file=sys.stderr)
            return 1

        # Flipping higher_is_better via override: the wobble run's
        # locate_ns_per_op DROPPED 2x vs this baseline (600 -> 330)
        # which the built-in lower-is-better direction accepts; flipped
        # to higher-is-better the same drop must fail.
        flipped = dict(regressed)
        flipped["_gate"] = {
            "locate_ns_per_op": {"higher_is_better": True}}
        with open(os.path.join(base_dir, "BENCH_throughput.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(flipped, fh)
        _, failures = evaluate(bench_dir, base_dir, tolerance)
        bad = [f for f in failures if "locate_ns_per_op" in f["metric"]]
        if len(bad) != 1:
            print(f"self-test: flipped direction should fail the drop, "
                  f"got {failures}", file=sys.stderr)
            return 1

        # Core-count mismatch: a baseline pinned to an impossible core
        # count must hard-fail, and --allow-concurrency-mismatch must
        # downgrade it to a skip (of the throughput rows).
        machine = os.cpu_count() or 1
        pinned = dict(baseline)
        pinned["hardware_concurrency"] = machine + 4
        with open(os.path.join(base_dir, "BENCH_throughput.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(pinned, fh)
        _, failures = evaluate(bench_dir, base_dir, tolerance)
        if (len(failures) != 1
                or "hardware_concurrency" not in failures[0]["metric"]):
            print(f"self-test: core-count mismatch should hard-fail, "
                  f"got {failures}", file=sys.stderr)
            return 1
        results, failures = evaluate(bench_dir, base_dir, tolerance,
                                     allow_concurrency_mismatch=True)
        if failures:
            print(f"self-test: --allow-concurrency-mismatch should "
                  f"skip, got {failures}", file=sys.stderr)
            return 1
        skipped = [r for r in results
                   if r["status"] == "skipped"
                   and "BENCH_throughput" in r["metric"]]
        if not skipped:
            print("self-test: mismatch-allowed run should skip the "
                  "throughput rows", file=sys.stderr)
            return 1
        # A matching pin must gate normally.
        pinned["hardware_concurrency"] = machine
        with open(os.path.join(base_dir, "BENCH_throughput.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(pinned, fh)
        _, failures = evaluate(bench_dir, base_dir, tolerance)
        if failures:
            print(f"self-test: matching core count should pass, got "
                  f"{failures}", file=sys.stderr)
            return 1
    print("self-test: gate fails a 2x regression, honors _gate "
          "overrides, enforces the core-count pin, and passes "
          "in-tolerance runs")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-dir", default="build",
                        help="directory holding fresh BENCH_*.json")
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        help="directory holding committed baselines")
    parser.add_argument("--report", default="",
                        help="write a JSON report to this path")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate catches a synthetic "
                             "2x regression")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (scheduled "
                             "full-suite runs)")
    parser.add_argument("--allow-concurrency-mismatch",
                        action="store_true",
                        help="downgrade a baseline/machine core-count "
                             "mismatch from hard failure to skipping "
                             "the throughput rows")
    args = parser.parse_args()

    try:
        tolerance = float(os.environ.get("BENCH_GATE_TOLERANCE",
                                         DEFAULT_TOLERANCE))
    except ValueError:
        print("BENCH_GATE_TOLERANCE must be a float", file=sys.stderr)
        return 2
    if not 0.0 < tolerance < 1.0:
        print("BENCH_GATE_TOLERANCE must be in (0, 1)", file=sys.stderr)
        return 2

    if args.self_test:
        return self_test(tolerance)
    return run_gate(args, tolerance)


if __name__ == "__main__":
    sys.exit(main())
