#!/usr/bin/env python3
"""Promote a CI bench artifact to the committed baseline.

The bench gate (tools/bench_gate.py) compares fresh runs against the
JSON files under bench/baselines/. Those files must come from a known
machine class — the release-matrix 4-core runner — or the gate's
multi-worker speedup rows are noise. This tool is the only supported
way to refresh them:

  1. Download the BENCH_*.json artifact from a release-matrix bench run.
  2. python3 tools/promote_baseline.py --artifact-dir <download> \
         [--baseline-dir bench/baselines]
  3. Review the printed speedup table, commit the result.

Validation before anything is written:
  - BENCH_throughput.json must exist in the artifact and record
    "hardware_concurrency" >= --min-concurrency (default 4). A laptop
    or container run without real cores is refused; --force overrides
    (for bootstrapping only — say why in the commit message).
  - Every promoted file must be valid JSON.

On promotion the tool:
  - carries forward any "_gate" override block from the existing
    baseline (gate policy is curated, not measured — promotion must not
    drop it);
  - stamps a "_provenance" block (source run, promoted-at time, core
    count) so a reviewer can trace any number back to its run;
  - prints the workers-vs-serial speedup table from the new
    throughput rows so the reviewer sees exactly what multi-core win
    (or loss) the baseline now asserts.

Usage:
  promote_baseline.py --artifact-dir DIR [--baseline-dir DIR]
                      [--min-concurrency N] [--source-run URL-or-id]
                      [--force]
  promote_baseline.py --self-test
"""

import argparse
import datetime
import json
import os
import shutil
import sys

PROMOTABLE = [
    "BENCH_throughput.json",
    "BENCH_http.json",
    "BENCH_robustness.json",
    "BENCH_cluster.json",
]


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        return None


def speedup_table(doc):
    """Rows of (workers, noise, scans_per_sec, speedup_vs_serial)."""
    rows = []
    for row in doc.get("rows", []):
        rows.append((row.get("workers"), row.get("noise"),
                     row.get("scans_per_sec"),
                     row.get("speedup_vs_serial")))
    return rows


def best_speedup(doc, workers):
    """Best speedup_vs_serial across noise levels for `workers`."""
    best = None
    for row in doc.get("rows", []):
        if row.get("workers") != workers:
            continue
        s = row.get("speedup_vs_serial")
        if isinstance(s, (int, float)) and (best is None or s > best):
            best = s
    return best


def validate(artifact_dir, min_concurrency, force):
    """Returns (docs, errors): artifact docs by filename, fatal errors."""
    errors = []
    docs = {}
    for filename in PROMOTABLE:
        path = os.path.join(artifact_dir, filename)
        if not os.path.exists(path):
            continue
        try:
            docs[filename] = load(path)
        except json.JSONDecodeError as e:
            errors.append(f"{filename}: invalid JSON ({e})")
    throughput = docs.get("BENCH_throughput.json")
    if throughput is None:
        errors.append("artifact has no BENCH_throughput.json — refusing "
                      "to promote a baseline without the core gate file")
        return docs, errors
    cores = throughput.get("hardware_concurrency")
    if not isinstance(cores, (int, float)):
        errors.append("BENCH_throughput.json lacks hardware_concurrency; "
                      "re-run the bench from a current build")
    elif int(cores) < min_concurrency and not force:
        errors.append(
            f"artifact measured on {int(cores)} core(s); baselines must "
            f"come from a >= {min_concurrency}-core runner (the release "
            f"matrix bench job). Use --force only to bootstrap.")
    return docs, errors


def promote(artifact_dir, baseline_dir, min_concurrency, source_run,
            force, now=None):
    """Validates and copies. Returns process exit code."""
    docs, errors = validate(artifact_dir, min_concurrency, force)
    for err in errors:
        print(f"promote: {err}", file=sys.stderr)
    if errors:
        return 1

    os.makedirs(baseline_dir, exist_ok=True)
    stamp = (now or datetime.datetime.now(datetime.timezone.utc)) \
        .strftime("%Y-%m-%dT%H:%M:%SZ")
    throughput = docs["BENCH_throughput.json"]
    for filename, doc in docs.items():
        old = load(os.path.join(baseline_dir, filename))
        if old is not None and "_gate" in old and "_gate" not in doc:
            doc["_gate"] = old["_gate"]
        doc["_provenance"] = {
            "promoted_at": stamp,
            "source_run": source_run or "unspecified",
            "hardware_concurrency":
                throughput.get("hardware_concurrency"),
            "tool": "tools/promote_baseline.py",
        }
        out = os.path.join(baseline_dir, filename)
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"promote: wrote {out}")

    print("\nworkers  noise  scans/s      speedup_vs_serial")
    for workers, noise, sps, speedup in speedup_table(throughput):
        sps_s = f"{sps:.0f}" if isinstance(sps, (int, float)) else "?"
        spd_s = f"{speedup:.2f}x" if isinstance(speedup, (int, float)) \
            else "?"
        print(f"{workers!s:>7}  {noise!s:>5}  {sps_s:>11}  {spd_s:>8}")
    best4 = best_speedup(throughput, 4)
    if best4 is not None:
        verdict = "VERIFIED" if best4 >= 2.0 else "NOT reached"
        print(f"\nworkers=4 best speedup: {best4:.2f}x "
              f"(>= 2x multi-core target: {verdict})")
    return 0


def self_test():
    """End-to-end in a temp dir: refusal paths, then a promotion that
    carries _gate forward and stamps provenance."""
    import tempfile

    good = {
        "bench": "ingest_throughput",
        "hardware_concurrency": 4,
        "locate_ns_per_op": 250.0,
        "rows": [
            {"workers": 0, "noise": 0, "scans_per_sec": 100000.0,
             "speedup_vs_serial": 1.0},
            {"workers": 4, "noise": 0, "scans_per_sec": 240000.0,
             "speedup_vs_serial": 2.4},
        ],
    }
    with tempfile.TemporaryDirectory() as tmp:
        artifact = os.path.join(tmp, "artifact")
        baseline = os.path.join(tmp, "baseline")
        os.makedirs(artifact)
        os.makedirs(baseline)

        # Empty artifact dir: refused.
        if promote(artifact, baseline, 4, "run-1", False) == 0:
            print("self-test: empty artifact should be refused",
                  file=sys.stderr)
            return 1

        # 1-core artifact: refused without --force, allowed with it.
        onecore = dict(good)
        onecore["hardware_concurrency"] = 1
        with open(os.path.join(artifact, "BENCH_throughput.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(onecore, fh)
        if promote(artifact, baseline, 4, "run-1", False) == 0:
            print("self-test: 1-core artifact should be refused",
                  file=sys.stderr)
            return 1
        if promote(artifact, baseline, 4, "run-1", True) != 0:
            print("self-test: --force should allow the 1-core artifact",
                  file=sys.stderr)
            return 1

        # Seed a curated _gate on the existing baseline, then promote a
        # proper 4-core artifact — the override must survive and the
        # provenance must identify the run.
        seeded = load(os.path.join(baseline, "BENCH_throughput.json"))
        seeded["_gate"] = {"serial_scans_per_sec": {"tolerance": 0.1}}
        with open(os.path.join(baseline, "BENCH_throughput.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(seeded, fh)
        with open(os.path.join(artifact, "BENCH_throughput.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(good, fh)
        if promote(artifact, baseline, 4, "run-2", False) != 0:
            print("self-test: 4-core artifact should promote",
                  file=sys.stderr)
            return 1
        promoted = load(os.path.join(baseline, "BENCH_throughput.json"))
        if promoted.get("_gate") != seeded["_gate"]:
            print(f"self-test: _gate should carry forward, got "
                  f"{promoted.get('_gate')}", file=sys.stderr)
            return 1
        prov = promoted.get("_provenance", {})
        if (prov.get("source_run") != "run-2"
                or prov.get("hardware_concurrency") != 4):
            print(f"self-test: bad provenance {prov}", file=sys.stderr)
            return 1
        if best_speedup(promoted, 4) != 2.4:
            print("self-test: speedup extraction broken",
                  file=sys.stderr)
            return 1
    print("self-test: promotion refuses small/missing artifacts, "
          "carries _gate forward, stamps provenance")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifact-dir",
                        help="directory with the downloaded BENCH_*.json "
                             "artifact")
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        help="committed baseline directory to update")
    parser.add_argument("--min-concurrency", type=int, default=4,
                        help="refuse artifacts measured on fewer cores "
                             "(default 4)")
    parser.add_argument("--source-run", default="",
                        help="CI run URL or id recorded in _provenance")
    parser.add_argument("--force", action="store_true",
                        help="promote despite a core-count refusal "
                             "(bootstrapping only)")
    parser.add_argument("--self-test", action="store_true",
                        help="exercise refusal and promotion paths in a "
                             "temp dir")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.artifact_dir:
        parser.error("--artifact-dir is required (or --self-test)")
    return promote(args.artifact_dir, args.baseline_dir,
                   args.min_concurrency, args.source_run, args.force)


if __name__ == "__main__":
    sys.exit(main())
