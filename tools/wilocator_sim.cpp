// wilocator_sim — end-to-end simulation driver.
//
// Runs the full WiLocator pipeline on the synthetic corridor with
// everything configurable from the command line, and writes CSV
// artifacts (trajectories per Definition 6, prediction samples, the
// traffic map) for downstream analysis.
//
// Usage:
//   wilocator_sim [--days N] [--test-day D] [--density APS_PER_KM]
//                 [--seed S] [--scan-period SEC] [--order K]
//                 [--out DIR]
//
// Example:
//   wilocator_sim --days 5 --density 18 --out /tmp/wiloc

#include <filesystem>
#include <fstream>
#include <set>
#include <iostream>
#include <string>

#include "core/wilocator.hpp"
#include "sim/city.hpp"
#include "sim/crowd.hpp"
#include "sim/fleet.hpp"
#include "util/table.hpp"

namespace {

using namespace wiloc;

struct Options {
  int history_days = 3;
  int test_day = 5;
  double density = 24.0;
  std::uint64_t seed = 2016;
  double scan_period = 10.0;
  std::size_t order = 2;
  std::string out_dir = "wilocator_out";
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--days N] [--test-day D] [--density APS_PER_KM]"
               " [--seed S] [--scan-period SEC] [--order K] [--out DIR]\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    try {
      if (arg == "--days") {
        opts.history_days = std::stoi(next());
      } else if (arg == "--test-day") {
        opts.test_day = std::stoi(next());
      } else if (arg == "--density") {
        opts.density = std::stod(next());
      } else if (arg == "--seed") {
        opts.seed = std::stoull(next());
      } else if (arg == "--scan-period") {
        opts.scan_period = std::stod(next());
      } else if (arg == "--order") {
        opts.order = static_cast<std::size_t>(std::stoul(next()));
      } else if (arg == "--out") {
        opts.out_dir = next();
      } else {
        usage_and_exit(argv[0]);
      }
    } catch (const std::exception&) {
      usage_and_exit(argv[0]);
    }
  }
  if (opts.history_days < 1 || opts.test_day <= opts.history_days ||
      opts.density <= 0.0 || opts.scan_period <= 0.0 || opts.order < 1)
    usage_and_exit(argv[0]);
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse(argc, argv);
  std::filesystem::create_directories(opts.out_dir);

  sim::CityParams city_params;
  city_params.ap_density_per_km = opts.density;
  city_params.seed = opts.seed;
  const sim::City city = sim::build_paper_city(city_params);
  const sim::TrafficModel traffic(opts.seed + 1);
  const sim::FleetPlan plan = sim::default_fleet_plan(city);

  std::cout << "city: " << city.network->edge_count() << " segments, "
            << city.aps.count() << " APs; training "
            << opts.history_days << " day(s)..." << std::endl;

  core::ServerConfig config;
  config.svd.order = opts.order;
  core::WiLocatorServer server(city.route_pointers(), city.ap_snapshot(),
                               *city.rf_model,
                               DaySlots::paper_five_slots(), config);
  Rng rng(opts.seed + 2);
  {
    const auto history = sim::simulate_service_days(
        city, traffic, plan, 0, opts.history_days, rng);
    for (const auto& trip : history) {
      const auto& route = city.routes[trip.route.index()];
      for (const auto& seg : trip.segments)
        if (seg.travel_time() > 0.0)
          server.load_history({route.edges()[seg.edge_index], trip.route,
                               seg.exit, seg.travel_time()});
    }
    server.finalize_history();
  }

  std::cout << "replaying test day " << opts.test_day << " live..."
            << std::endl;
  std::uint32_t next_id = 0;
  auto records = sim::simulate_service_day(city, traffic, plan,
                                           opts.test_day, rng, &next_id);
  const rf::Scanner scanner;
  sim::CrowdParams crowd;
  crowd.scan_period_s = opts.scan_period;

  const geo::LatLonAnchor anchor({49.263, -123.138});
  std::ofstream predictions(opts.out_dir + "/predictions.csv");
  predictions << "route,trip,query_tod,stop,predicted_s,actual_s,error_s\n";
  RunningStats position_error;
  RunningStats prediction_error;
  std::set<std::string> trajectory_written;

  for (const auto& trip : records) {
    const auto& route = city.routes[trip.route.index()];
    const auto reports = sim::sense_trip(trip, route, city.aps,
                                         *city.rf_model, scanner, rng,
                                         crowd);
    server.begin_trip(trip.id, trip.route);
    for (const auto& report : reports) {
      const auto fix = server.ingest(trip.id, report.scan);
      if (fix.has_value())
        position_error.add(
            std::abs(fix->route_offset - trip.offset_at(fix->time)));
    }
    // Prediction samples at each 3rd stop departure.
    for (std::size_t s = 0; s + 1 < trip.stops.size(); s += 3) {
      const auto& st = trip.stops[s];
      for (std::size_t target = st.stop_index + 2;
           target < route.stop_count(); target += 4) {
        const SimTime eta = server.predictor().predict_arrival(
            route, route.stop_offset(st.stop_index), st.depart, target);
        const SimTime truth = trip.arrival_at_stop(target);
        prediction_error.add(std::abs(eta - truth));
        predictions << route.name() << ',' << trip.id.value() << ','
                    << format_tod(time_of_day(st.depart)) << ',' << target
                    << ',' << eta - st.depart << ',' << truth - st.depart
                    << ',' << std::abs(eta - truth) << '\n';
      }
    }
    // Trajectory CSV (Definition 6) for the first trip of each route.
    if (trajectory_written.insert(route.name()).second) {
      std::ofstream traj(opts.out_dir + "/trajectory_" + route.name() +
                         ".csv");
      core::write_trajectory_csv(
          traj, core::to_geo_trajectory(
                    server.tracker(trip.id).fixes(), route, anchor));
    }
    server.end_trip(trip.id);
  }

  // Traffic map snapshot at the PM rush.
  {
    std::ofstream map_csv(opts.out_dir + "/traffic_map.csv");
    map_csv << "edge,state,z_score,recent_count\n";
    const auto map =
        server.traffic_map(at_day_time(opts.test_day, hms(18, 30)));
    for (const auto& [edge, seg] : map.segments) {
      map_csv << edge.value() << ',' << core::to_string(seg.state) << ','
              << seg.z_score << ',' << seg.recent_count << '\n';
    }
  }

  std::cout << "tracked " << records.size() << " trips: mean position "
            << "error " << position_error.mean() << " m ("
            << position_error.count() << " fixes); mean arrival "
            << "prediction error " << prediction_error.mean() << " s ("
            << prediction_error.count() << " samples)\n"
            << "artifacts in " << opts.out_dir << "/\n";
  return 0;
}
