// wilocator_router: the cluster front door.
//
// Speaks the same HTTP API as wilocator_serve but owns no model state:
// it shards trips across the given nodes by rendezvous hash, splits
// scan batches by owner, fails trips over to the next replica when a
// node dies, and scatter-gathers route-level arrival queries. Pair it
// with nodes that --peers each other so failover targets hold
// replicated learned state (DESIGN.md §14).
//
// Prints "LISTENING <port>" on stdout once ready; harnesses parse it.
//
// Usage: wilocator_router --nodes LIST [options]
//   --nodes LIST         required: "id=host:port,id=host:port,..."
//   --port N             bind port (default 0 = ephemeral)
//   --http-loops N       SO_REUSEPORT event loops (default 1; the
//                        handler is thread-safe, DESIGN.md §15)
//   --probe-interval S   /healthz probe cadence (default 0.25)
//   --probe-failures N   consecutive failures marking a node down
//                        (default 2)
//   --upstream-timeout S connect/read/write timeout per upstream call
//                        (default 2)

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "cluster/router.hpp"

namespace {

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig); }

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --nodes LIST [--port N] [--http-loops N]"
               " [--probe-interval S]"
               " [--probe-failures N] [--upstream-timeout S]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wiloc;

  std::string nodes_spec;
  std::uint16_t port = 0;
  int http_loops = 1;
  double probe_interval_s = 0.25;
  int probe_failures = 2;
  double upstream_timeout_s = 2.0;

  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--nodes") == 0)
      nodes_spec = need("--nodes");
    else if (std::strcmp(argv[i], "--port") == 0)
      port = static_cast<std::uint16_t>(std::atoi(need("--port")));
    else if (std::strcmp(argv[i], "--http-loops") == 0)
      http_loops = std::max(1, std::atoi(need("--http-loops")));
    else if (std::strcmp(argv[i], "--probe-interval") == 0)
      probe_interval_s = std::atof(need("--probe-interval"));
    else if (std::strcmp(argv[i], "--probe-failures") == 0)
      probe_failures = std::atoi(need("--probe-failures"));
    else if (std::strcmp(argv[i], "--upstream-timeout") == 0)
      upstream_timeout_s = std::atof(need("--upstream-timeout"));
    else
      usage(argv[0]);
  }
  if (nodes_spec.empty()) {
    std::cerr << "--nodes is required\n";
    usage(argv[0]);
  }

  cluster::RouterOptions options;
  options.http.port = port;
  options.http.loops = static_cast<std::size_t>(http_loops);
  options.probe_interval_s = probe_interval_s;
  options.probe_failures = probe_failures;
  options.client.connect_timeout_s = upstream_timeout_s;
  options.client.read_timeout_s = upstream_timeout_s;
  options.client.write_timeout_s = upstream_timeout_s;

  cluster::ClusterRouter router(cluster::NodeInfo::parse_list(nodes_spec),
                                options);
  router.start();

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::cout << "LISTENING " << router.port() << std::endl;

  while (g_signal.load() == 0 && router.running())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::cerr << "router shutting down (signal " << g_signal.load() << ")\n";
  router.stop();
  return 0;
}
